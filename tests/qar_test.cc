#include "qar/qar_miner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/fixtures.h"
#include "qar/equidepth.h"

namespace dar {
namespace {

TEST(EquiDepthTest, RejectsBadInput) {
  std::vector<double> empty;
  EXPECT_TRUE(EquiDepthPartition(empty, 3).status().IsInvalidArgument());
  std::vector<double> one = {1.0};
  EXPECT_TRUE(EquiDepthPartition(one, 0).status().IsInvalidArgument());
}

TEST(EquiDepthTest, Figure1SalaryPartition) {
  // The paper's Figure 1: depth-2 equi-depth partitioning of the salary
  // column gives [18K,30K], [31K,80K], [81K,82K] — the middle interval
  // spans a 49K gap, which is the motivating defect.
  auto intervals = EquiDepthPartition(Fig1SalaryColumn(), 3);
  ASSERT_TRUE(intervals.ok());
  ASSERT_EQ(intervals->size(), 3u);
  EXPECT_DOUBLE_EQ((*intervals)[0].lo, 18000);
  EXPECT_DOUBLE_EQ((*intervals)[0].hi, 30000);
  EXPECT_DOUBLE_EQ((*intervals)[1].lo, 31000);
  EXPECT_DOUBLE_EQ((*intervals)[1].hi, 80000);
  EXPECT_DOUBLE_EQ((*intervals)[2].lo, 81000);
  EXPECT_DOUBLE_EQ((*intervals)[2].hi, 82000);
  for (const auto& iv : *intervals) EXPECT_EQ(iv.count, 2);
}

TEST(EquiDepthTest, CountsSumToN) {
  Rng rng(55);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Uniform(0, 100));
  for (size_t k : {1u, 2u, 7u, 50u}) {
    auto intervals = EquiDepthPartition(values, k);
    ASSERT_TRUE(intervals.ok());
    int64_t total = 0;
    for (const auto& iv : *intervals) {
      total += iv.count;
      EXPECT_LE(iv.lo, iv.hi);
    }
    EXPECT_EQ(total, 1000);
    EXPECT_LE(intervals->size(), k);
  }
}

TEST(EquiDepthTest, IntervalsAreOrderedAndDisjoint) {
  Rng rng(56);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Uniform(-5, 5));
  auto intervals = EquiDepthPartition(values, 10);
  ASSERT_TRUE(intervals.ok());
  for (size_t i = 1; i < intervals->size(); ++i) {
    EXPECT_GT((*intervals)[i].lo, (*intervals)[i - 1].hi);
  }
}

TEST(EquiDepthTest, DepthsAreBalanced) {
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(double(i));
  auto intervals = EquiDepthPartition(values, 9);
  ASSERT_TRUE(intervals.ok());
  ASSERT_EQ(intervals->size(), 9u);
  for (const auto& iv : *intervals) EXPECT_EQ(iv.count, 100);
}

TEST(EquiDepthTest, NeverSplitsTiedValues) {
  // 90% of the column is the value 7: every interval boundary must respect
  // the run of ties.
  std::vector<double> values(90, 7.0);
  for (int i = 0; i < 10; ++i) values.push_back(100.0 + i);
  auto intervals = EquiDepthPartition(values, 5);
  ASSERT_TRUE(intervals.ok());
  int covering_7 = 0;
  for (const auto& iv : *intervals) {
    if (iv.Contains(7.0)) ++covering_7;
  }
  EXPECT_EQ(covering_7, 1);
}

TEST(PartialCompletenessTest, FormulaAndValidation) {
  // 2 * n / (m * (K - 1)) with n=3 attrs, m=0.1, K=2 -> 60.
  EXPECT_EQ(*NumIntervalsForPartialCompleteness(0.1, 3, 2.0), 60u);
  EXPECT_EQ(*NumIntervalsForPartialCompleteness(0.5, 1, 3.0), 2u);
  EXPECT_FALSE(NumIntervalsForPartialCompleteness(0.0, 3, 2.0).ok());
  EXPECT_FALSE(NumIntervalsForPartialCompleteness(0.1, 3, 1.0).ok());
  EXPECT_FALSE(NumIntervalsForPartialCompleteness(0.1, 0, 2.0).ok());
  EXPECT_FALSE(NumIntervalsForPartialCompleteness(1.5, 3, 2.0).ok());
}

TEST(QarMinerTest, RejectsEmptyRelation) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval}});
  Relation rel(s);
  QarMiner miner(QarOptions{});
  EXPECT_TRUE(miner.Mine(rel).status().IsInvalidArgument());
}

TEST(QarMinerTest, FindsPlantedIntervalRule) {
  // Two correlated columns: x in [0,10) <=> y in [100,110).
  Schema s = *Schema::Make(
      {{"x", AttributeKind::kInterval}, {"y", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(57);
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(
          rel.AppendRow({rng.Uniform(0, 10), rng.Uniform(100, 110)}).ok());
    } else {
      ASSERT_TRUE(
          rel.AppendRow({rng.Uniform(50, 60), rng.Uniform(200, 210)}).ok());
    }
  }
  QarOptions opts;
  opts.min_support = 0.2;
  opts.min_confidence = 0.8;
  opts.max_itemset_size = 2;
  QarMiner miner(opts);
  auto result = miner.Mine(rel);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& rule : result->rules) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1 &&
        rule.antecedent[0].column == 0 && rule.consequent[0].column == 1 &&
        rule.antecedent[0].hi < 50 && rule.consequent[0].lo >= 100 &&
        rule.consequent[0].hi < 150) {
      found = true;
      EXPECT_GE(rule.confidence, 0.8);
    }
  }
  EXPECT_TRUE(found);
}

TEST(QarMinerTest, NominalEqualityPredicates) {
  Schema s = *Schema::Make(
      {{"job", AttributeKind::kNominal}, {"salary", AttributeKind::kInterval}});
  Relation rel(s);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.AppendRow({0, 40000.0 + (i % 3)}).ok());  // job 0
    ASSERT_TRUE(rel.AppendRow({1, 90000.0 + (i % 3)}).ok());  // job 1
  }
  QarOptions opts;
  opts.min_support = 0.3;
  opts.min_confidence = 0.9;
  opts.max_itemset_size = 2;
  QarMiner miner(opts);
  auto result = miner.Mine(rel);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& rule : result->rules) {
    if (rule.antecedent.size() == 1 && rule.antecedent[0].is_nominal &&
        rule.antecedent[0].lo == 0 && rule.consequent.size() == 1 &&
        rule.consequent[0].column == 1 && rule.consequent[0].hi < 50000) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QarMinerTest, NoSameAttributePredicatesInOneRule) {
  Schema s = *Schema::Make(
      {{"x", AttributeKind::kInterval}, {"y", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(58);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rel.AppendRow({rng.Uniform(0, 100), rng.Uniform(0, 100)}).ok());
  }
  QarOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.0;
  opts.max_base_intervals = 10;
  opts.max_merged_support = 0.3;
  QarMiner miner(opts);
  auto result = miner.Mine(rel);
  ASSERT_TRUE(result.ok());
  for (const auto& rule : result->rules) {
    std::vector<size_t> cols;
    for (const auto& p : rule.antecedent) cols.push_back(p.column);
    for (const auto& p : rule.consequent) cols.push_back(p.column);
    std::sort(cols.begin(), cols.end());
    EXPECT_TRUE(std::adjacent_find(cols.begin(), cols.end()) == cols.end());
  }
}

TEST(QarMinerTest, MergedRangesRespectMaxSupport) {
  Schema s = *Schema::Make({{"x", AttributeKind::kInterval}});
  Relation rel(s);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rel.AppendRow({double(i)}).ok());
  }
  QarOptions opts;
  opts.min_support = 0.05;
  opts.max_merged_support = 0.3;
  QarMiner miner(opts);
  auto result = miner.Mine(rel);
  ASSERT_TRUE(result.ok());
  // Base intervals exist and no emitted predicate covers more than ~30%+1
  // base interval of the data.
  ASSERT_FALSE(result->base_intervals[0].empty());
}

TEST(QarMinerTest, InterestFilterPrunesIndependentRules) {
  // Column y is correlated with x in one regime and independent noise
  // elsewhere; with the interest filter on, rules whose support matches
  // the independence expectation are pruned.
  Schema s = *Schema::Make(
      {{"x", AttributeKind::kInterval}, {"y", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(59);
  for (int i = 0; i < 600; ++i) {
    if (i % 3 == 0) {
      // Correlated block: x ~ [0,10), y ~ [100,110).
      ASSERT_TRUE(
          rel.AppendRow({rng.Uniform(0, 10), rng.Uniform(100, 110)}).ok());
    } else {
      // Independent block.
      ASSERT_TRUE(
          rel.AppendRow({rng.Uniform(20, 100), rng.Uniform(120, 300)}).ok());
    }
  }
  QarOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.3;
  opts.max_base_intervals = 8;
  opts.max_merged_support = 0.3;
  opts.max_itemset_size = 2;

  QarMiner unfiltered(opts);
  auto base = unfiltered.Mine(rel);
  ASSERT_TRUE(base.ok());

  opts.min_interest = 1.5;
  QarMiner filtered(opts);
  auto pruned = filtered.Mine(rel);
  ASSERT_TRUE(pruned.ok());

  EXPECT_LT(pruned->rules.size(), base->rules.size());
  for (const auto& rule : pruned->rules) {
    EXPECT_GE(rule.interest, 1.5);
  }
  // The genuinely correlated rule survives.
  bool found = false;
  for (const auto& rule : pruned->rules) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1 &&
        rule.antecedent[0].column == 0 && rule.antecedent[0].hi <= 15 &&
        rule.consequent[0].column == 1 && rule.consequent[0].hi <= 115) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QarMinerTest, RuleToStringReadable) {
  Schema s = *Schema::Make(
      {{"age", AttributeKind::kInterval}, {"salary", AttributeKind::kInterval}});
  QarRule rule;
  rule.antecedent = {{0, false, 30, 39}};
  rule.consequent = {{1, false, 40000, 50000}};
  rule.support = 0.5;
  rule.confidence = 0.9;
  std::string str = rule.ToString(s);
  EXPECT_NE(str.find("30 <= age <= 39"), std::string::npos);
  EXPECT_NE(str.find("=>"), std::string::npos);
}

}  // namespace
}  // namespace dar
