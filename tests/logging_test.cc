#include "common/logging.h"

#include <gtest/gtest.h>

namespace dar {
namespace {

TEST(DarCheckTest, PassingCheckIsANoOp) {
  DAR_CHECK(1 + 1 == 2) << "never printed";
  DAR_CHECK_EQ(3, 3);
  DAR_CHECK_NE(3, 4);
  DAR_CHECK_LT(1, 2);
  DAR_CHECK_LE(2, 2);
  DAR_CHECK_GT(2, 1);
  DAR_CHECK_GE(2, 2);
}

TEST(DarCheckDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(DAR_CHECK(false) << "extra context", "check failed: false");
  EXPECT_DEATH(DAR_CHECK_EQ(1, 2), "\\(1 vs 2\\)");
}

// Regression test for the dangling-else hazard: with a brace-less
// `if (!(cond))` expansion, the `else` below would bind to the macro's
// internal `if` instead of the outer one, running `else_ran = true` whenever
// the *check* passed. The `switch (0) case 0: default:` expansion makes the
// macro a single statement an outer `else` cannot capture.
TEST(DarCheckTest, ElseBindsToOuterIf) {
  bool else_ran = false;
  bool outer = true;
  if (outer)
    DAR_CHECK(true) << "fine";
  else
    else_ran = true;
  EXPECT_FALSE(else_ran) << "else bound to the macro's internal if";

  outer = false;
  if (outer)
    DAR_CHECK(true) << "not reached";
  else
    else_ran = true;
  EXPECT_TRUE(else_ran);
}

TEST(DarCheckTest, ElseBindsToOuterIfWithComparisonMacros) {
  bool else_ran = false;
  if (true)
    DAR_CHECK_EQ(1, 1);
  else
    else_ran = true;
  EXPECT_FALSE(else_ran);
}

TEST(DarDcheckTest, PassingDcheckIsANoOp) {
  DAR_DCHECK(true) << "never printed";
  DAR_DCHECK_EQ(5, 5);
  DAR_DCHECK_GE(5, 4);
}

TEST(DarDcheckTest, ElseBindsToOuterIf) {
  bool else_ran = false;
  if (false)
    DAR_DCHECK(true);
  else
    else_ran = true;
  EXPECT_TRUE(else_ran);
}

#if DAR_ENABLE_DCHECKS
TEST(DarDcheckDeathTest, FailingDcheckAbortsWhenEnabled) {
  EXPECT_DEATH(DAR_DCHECK(false) << "ctx", "check failed: false");
}
#else
TEST(DarDcheckTest, DisabledDcheckDoesNotEvaluateOperands) {
  int evaluations = 0;
  auto touch = [&]() {
    ++evaluations;
    return true;
  };
  DAR_DCHECK(touch());
  DAR_DCHECK_EQ(touch(), true);
  EXPECT_EQ(evaluations, 0);
}
#endif  // DAR_ENABLE_DCHECKS

}  // namespace
}  // namespace dar
