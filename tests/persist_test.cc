// dar::persist: wire primitive round-trips, container framing, section
// codec round-trips, checkpoint save/restore equality (bit-identical
// re-mining at any thread count, warm re-mining under changed thresholds),
// and the fault-injection sweep — every corruption mode must surface as a
// descriptive error Status, never a crash (run under `ctest -L ubsan` with
// -DDAR_SANITIZE=address,undefined).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "datagen/planted.h"
#include "persist/checkpoint_io.h"
#include "persist/codec.h"
#include "persist/wire.h"
#include "stream/streaming_miner.h"
#include "stream_test_peer.h"

namespace dar {
namespace {

using persist::CheckpointReader;
using persist::CheckpointWriter;
using persist::SectionId;
using persist::WireReader;
using persist::WireWriter;

// ---------------------------------------------------------------------------
// Wire primitives.

TEST(WireTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-(int64_t{1} << 40));
  w.F64(-0.1);
  w.F64(std::numeric_limits<double>::infinity());
  w.F64(std::numeric_limits<double>::quiet_NaN());
  w.Str("hello");
  w.Str("");

  WireReader r(w.bytes());
  EXPECT_EQ(r.U8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.U32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32().ValueOrDie(), -42);
  EXPECT_EQ(r.I64().ValueOrDie(), -(int64_t{1} << 40));
  EXPECT_EQ(r.F64().ValueOrDie(), -0.1);  // bitwise round-trip
  EXPECT_TRUE(std::isinf(r.F64().ValueOrDie()));
  EXPECT_TRUE(std::isnan(r.F64().ValueOrDie()));
  EXPECT_EQ(r.Str().ValueOrDie(), "hello");
  EXPECT_EQ(r.Str().ValueOrDie(), "");
  EXPECT_TRUE(r.ExpectEnd("test blob").ok());
}

TEST(WireTest, LittleEndianOnTheWire) {
  WireWriter w;
  w.U32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(w.bytes()[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(w.bytes()[3]), 0x01);
}

TEST(WireTest, ShortReadsFailCleanly) {
  WireWriter w;
  w.U32(7);
  WireReader r(std::string_view(w.bytes()).substr(0, 2));
  auto got = r.U32();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsOutOfRange()) << got.status();

  // A string whose length prefix overruns the buffer.
  WireWriter w2;
  w2.U32(1000);  // length prefix, but no body follows
  WireReader r2(w2.bytes());
  EXPECT_TRUE(r2.Str().status().IsOutOfRange());

  WireReader r3(std::string_view("abc"));
  EXPECT_TRUE(r3.Slice(4).status().IsOutOfRange());
  auto sliced = r3.Slice(2);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->remaining(), 2u);
  EXPECT_FALSE(r3.ExpectEnd("r3").ok()) << "one byte left";
}

TEST(WireTest, Crc32MatchesReferenceVector) {
  // The CRC-32/ISO-HDLC check value, shared with zlib/binascii.crc32 —
  // tools/dar_ckpt.py relies on this agreement.
  EXPECT_EQ(persist::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(persist::Crc32(""), 0u);
}

// ---------------------------------------------------------------------------
// Container framing.

TEST(CheckpointIoTest, ContainerRoundTripsInMemory) {
  CheckpointWriter writer;
  writer.AddSection(SectionId::kSchema, "schema-bytes");
  writer.AddSection(SectionId::kBuilder, std::string(1000, 'x'));
  writer.AddSection(SectionId::kConfig, "");  // empty payload is legal

  auto reader = CheckpointReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->format_version(), persist::kFormatVersion);
  ASSERT_EQ(reader->section_ids().size(), 3u);
  EXPECT_TRUE(reader->HasSection(SectionId::kSchema));
  EXPECT_FALSE(reader->HasSection(SectionId::kSnapshot));
  EXPECT_EQ(reader->Section(SectionId::kSchema).ValueOrDie(), "schema-bytes");
  EXPECT_EQ(reader->Section(SectionId::kBuilder).ValueOrDie(),
            std::string(1000, 'x'));
  EXPECT_EQ(reader->Section(SectionId::kConfig).ValueOrDie(), "");
  EXPECT_TRUE(
      reader->Section(SectionId::kSnapshot).status().IsNotFound());
}

TEST(CheckpointIoTest, UnknownSectionIdsAreTolerated) {
  CheckpointWriter writer;
  writer.AddSection(SectionId::kSchema, "s");
  writer.AddSection(static_cast<SectionId>(42), "future-content");
  auto reader = CheckpointReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->section_ids()[1], 42u);
  EXPECT_EQ(persist::SectionName(42), "unknown");
}

TEST(CheckpointIoTest, Version1PayloadOnlyCrcStillReads) {
  // A version-1 container built by hand: section CRCs cover the payload
  // bytes only (the pre-v2 layout). The reader must keep accepting it.
  WireWriter w;
  w.Raw(std::string_view(persist::kCheckpointMagic,
                         sizeof(persist::kCheckpointMagic)));
  w.U32(1);  // format_version 1
  w.U32(1);  // section_count
  w.U32(persist::Crc32(std::string_view(w.bytes()).substr(0, 16)));
  const std::string payload = "v1-payload";
  w.U32(static_cast<uint32_t>(SectionId::kConfig));
  w.U64(payload.size());
  w.Raw(payload);
  w.U32(persist::Crc32(payload));

  auto reader = CheckpointReader::Parse(std::move(w).Take());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->format_version(), 1u);
  EXPECT_EQ(reader->Section(SectionId::kConfig).ValueOrDie(), payload);
}

TEST(CheckpointIoTest, SectionIdCorruptionIsDetected) {
  // The v2 section CRC covers the id + length header: flipping a bit in
  // an (optional) section's id must fail the parse, not silently turn
  // the section into an ignorable unknown one.
  CheckpointWriter writer;
  writer.AddSection(SectionId::kShards, "shard-bytes");
  std::string bytes = writer.Serialize();
  bytes[persist::kHeaderBytes + 2] ^= 0x01;  // third byte of the u32 id
  auto reader = CheckpointReader::Parse(std::move(bytes));
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos)
      << reader.status();
}

TEST(CheckpointIoTest, DuplicateSectionsRefused) {
  CheckpointWriter writer;
  writer.AddSection(SectionId::kConfig, "a");
  writer.AddSection(SectionId::kConfig, "b");
  auto reader = CheckpointReader::Parse(writer.Serialize());
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("duplicate"), std::string::npos);
}

TEST(CheckpointIoTest, FileRoundTripIsAtomic) {
  const std::string path = testing::TempDir() + "/ckpt_io_test.darckpt";
  CheckpointWriter writer;
  writer.AddSection(SectionId::kConfig, "payload");
  size_t bytes = 0;
  ASSERT_TRUE(writer.WriteToFile(path, &bytes).ok());
  EXPECT_GT(bytes, persist::kHeaderBytes);
  // No temp file may linger after a successful write.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto reader = CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->total_bytes(), bytes);
  std::remove(path.c_str());
}

TEST(CheckpointIoTest, OpenMissingFileIsIOError) {
  auto reader =
      CheckpointReader::Open(testing::TempDir() + "/no_such_ckpt.darckpt");
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsIOError());
  EXPECT_NE(reader.status().message().find("no_such_ckpt"),
            std::string::npos)
      << "error must name the file: " << reader.status();
}

// ---------------------------------------------------------------------------
// Section codec round-trips.

TEST(CodecTest, SchemaSectionRoundTrips) {
  auto schema = Schema::Make({{"Age", AttributeKind::kInterval},
                              {"City", AttributeKind::kNominal},
                              {"Salary", AttributeKind::kInterval}});
  ASSERT_TRUE(schema.ok());
  const std::string bytes = persist::EncodeSchemaSection(*schema);
  auto back = persist::DecodeSchemaSection(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == *schema);
  EXPECT_EQ(persist::EncodeSchemaSection(*back), bytes);
}

TEST(CodecTest, PartitionSectionRoundTrips) {
  auto schema = Schema::Make({{"Lat", AttributeKind::kInterval},
                              {"Lon", AttributeKind::kInterval},
                              {"Kind", AttributeKind::kNominal}});
  ASSERT_TRUE(schema.ok());
  auto partition = AttributePartition::Make(
      *schema, {{{"Lat", "Lon"}, MetricKind::kEuclidean},
                {{"Kind"}, MetricKind::kDiscrete}});
  ASSERT_TRUE(partition.ok());
  const std::string bytes = persist::EncodePartitionSection(*partition);
  auto back = persist::DecodePartitionSection(bytes, *schema);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_parts(), 2u);
  EXPECT_EQ(back->part(0).columns, partition->part(0).columns);
  EXPECT_EQ(back->part(0).metric, MetricKind::kEuclidean);
  EXPECT_EQ(back->part(1).label, partition->part(1).label);
  // A partition referencing columns outside the schema is refused.
  auto narrow = Schema::Make({{"Lat", AttributeKind::kInterval}});
  ASSERT_TRUE(narrow.ok());
  EXPECT_FALSE(persist::DecodePartitionSection(bytes, *narrow).ok());
}

TEST(CodecTest, DictionariesSectionRoundTrips) {
  std::vector<Dictionary> dicts(2);
  EXPECT_EQ(dicts[0].Encode("red"), 0.0);
  EXPECT_EQ(dicts[0].Encode("green"), 1.0);
  EXPECT_EQ(dicts[1].Encode("madrid"), 0.0);
  const std::string bytes = persist::EncodeDictionariesSection(dicts);
  auto back = persist::DecodeDictionariesSection(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].Lookup("green").ValueOrDie(), 1.0);
  EXPECT_EQ((*back)[0].Decode(0.0).ValueOrDie(), "red");
  EXPECT_EQ((*back)[1].Decode(0.0).ValueOrDie(), "madrid");
}

TEST(CodecTest, ConfigSectionRoundTripsEveryKnob) {
  DarConfig config;
  config.memory_budget_bytes = 123456;
  config.frequency_fraction = 0.07;
  config.outlier_fraction = 0.5;
  config.initial_diameters = {1.5, 2.5};
  config.tree.branching_factor = 9;
  config.tree.leaf_capacity = 3;
  config.tree.threshold_growth = 1.75;
  config.refine_clusters = true;
  config.metric = ClusterMetric::kD3AvgIntra;
  config.degree_threshold = 42.0;
  config.degree_thresholds = {10.0, 20.0};
  config.density_thresholds = {3.0, 4.0};
  config.phase2_leniency = 3.5;
  config.prune_low_density_images = false;
  config.max_antecedent = 5;
  config.max_consequent = 4;
  config.max_rules = 777;
  config.max_cliques = 888;
  config.count_rule_support = true;
  const std::string bytes = persist::EncodeConfigSection(config);
  auto back = persist::DecodeConfigSection(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  // Re-encoding the decoded config must reproduce the bytes — which pins
  // every serialized knob without writing one EXPECT per field.
  EXPECT_EQ(persist::EncodeConfigSection(*back), bytes);
  EXPECT_EQ(back->metric, ClusterMetric::kD3AvgIntra);
  EXPECT_EQ(back->initial_diameters, config.initial_diameters);
}

TEST(CodecTest, ConfigSectionRejectsInvalidKnobs) {
  DarConfig config;
  std::string bytes = persist::EncodeConfigSection(config);
  // Corrupt the frequency_fraction (offset 8, after memory_budget) into a
  // negative value: the CRC layer is not involved here — the decoder's own
  // DarConfig::Validate must refuse.
  WireWriter w;
  w.F64(-0.5);
  for (int i = 0; i < 8; ++i) bytes[8 + i] = w.bytes()[i];
  auto back = persist::DecodeConfigSection(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Stream checkpoint end-to-end: save, restore, re-mine, fault-inject.

PlantedDataset TestData() {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/3, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/77);
  auto data = GeneratePlanted(spec, 1500, 78);
  EXPECT_TRUE(data.ok()) << data.status();
  return *std::move(data);
}

DarConfig TestConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(3, 80.0);
  config.degree_threshold = 150.0;
  return config;
}

Result<Session> TestSession(int threads = 1) {
  return Session::Builder()
      .WithConfig(TestConfig())
      .WithThreads(threads)
      .Build();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Cadence disabled: tests publish explicitly via Remine().
StreamConfig ManualRemine() {
  StreamConfig sc;
  sc.remine_every_rows = 0;
  return sc;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void ExpectSameRules(const std::vector<DistanceRule>& a,
                     const std::vector<DistanceRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].antecedent, b[i].antecedent);
    EXPECT_EQ(a[i].consequent, b[i].consequent);
    EXPECT_EQ(a[i].degree, b[i].degree);  // bitwise
    EXPECT_EQ(a[i].cooccurrence_slack, b[i].cooccurrence_slack);
  }
}

// Builds a stream over the test data, ingests everything, publishes one
// snapshot and saves a checkpoint; returns the checkpoint path.
std::string MakeCheckpoint(const Session& session, const PlantedDataset& data,
                           const std::string& name) {
  auto stream = session.OpenStream(data.relation.schema(), data.partition,
                                   ManualRemine());
  EXPECT_TRUE(stream.ok()) << stream.status();
  EXPECT_TRUE((*stream)->Ingest(data.relation).ok());
  EXPECT_TRUE((*stream)->Remine().ok());
  const std::string path = TempPath(name);
  EXPECT_TRUE((*stream)->SaveCheckpoint(path).ok());
  return path;
}

TEST(StreamCheckpointTest, SaveRestoreSaveIsByteIdentical) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  const std::string path = MakeCheckpoint(*session, data, "roundtrip.ckpt");

  auto restored = session->RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->stream->rows_ingested(),
            static_cast<int64_t>(data.relation.num_rows()));
  EXPECT_EQ(restored->stream->generation(), 1u);
  ASSERT_NE(StreamTestPeer::Snapshot(*restored->stream), nullptr);
  EXPECT_TRUE(restored->schema == data.relation.schema());

  // The restored stream's state re-serializes to the exact same bytes: the
  // decode-encode cycle loses nothing.
  const std::string path2 = TempPath("roundtrip2.ckpt");
  ASSERT_TRUE(restored->stream->SaveCheckpoint(path2).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(StreamCheckpointTest, RestoredStreamQueriesWithoutReingesting) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  const std::string path = MakeCheckpoint(*session, data, "query.ckpt");

  auto restored = session->RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The republished snapshot serves point queries immediately.
  auto hits =
      StreamTestPeer::Query(*restored->stream, data.relation.Row(0));
  ASSERT_TRUE(hits.ok()) << hits.status();
  std::remove(path.c_str());
}

TEST(StreamCheckpointTest, RemineAfterRestoreIsBitIdenticalAtAnyThreadCount) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    ManualRemine());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  auto original = (*stream)->Remine();
  ASSERT_TRUE(original.ok());
  ASSERT_GT((*original)->rules().size(), 0u);
  const std::string path = TempPath("threads.ckpt");
  ASSERT_TRUE((*stream)->SaveCheckpoint(path).ok());

  for (int threads : {1, 4}) {
    auto other = TestSession(threads);
    ASSERT_TRUE(other.ok());
    auto restored = other->RestoreCheckpoint(path);
    ASSERT_TRUE(restored.ok()) << restored.status();
    auto remined = restored->stream->Remine();
    ASSERT_TRUE(remined.ok()) << remined.status();
    ExpectSameRules((*remined)->rules(), (*original)->rules());
    EXPECT_EQ((*remined)->phase1().effective_d0,
              (*original)->phase1().effective_d0);
    EXPECT_EQ((*remined)->phase2().cliques, (*original)->phase2().cliques);
  }
  std::remove(path.c_str());
}

TEST(StreamCheckpointTest, WarmRemineUnderNewThresholdsNeedsNoData) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  const std::string path = MakeCheckpoint(*session, data, "warm.ckpt");

  // Restore under a *stricter* frequency threshold: the summaries are
  // pre-filter, so the new threshold applies without any data access.
  DarConfig warm_config = TestConfig();
  warm_config.frequency_fraction = 0.25;
  auto warm_session =
      Session::Builder().WithConfig(warm_config).Build();
  ASSERT_TRUE(warm_session.ok());
  auto restored = warm_session->RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The saved config is reported so callers can tell they diverged.
  EXPECT_EQ(restored->saved_config.frequency_fraction, 0.05);

  auto remined = restored->stream->Remine();
  ASSERT_TRUE(remined.ok()) << remined.status();
  const int64_t rows = restored->stream->rows_ingested();
  EXPECT_EQ((*remined)->phase1().frequency_threshold,
            static_cast<int64_t>(std::ceil(0.25 * double(rows))));
  std::remove(path.c_str());
}

TEST(StreamCheckpointTest, CheckpointWithoutSnapshotRestores) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    ManualRemine());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  // No Remine: generation 0, nothing published.
  const std::string path = TempPath("nosnap.ckpt");
  ASSERT_TRUE((*stream)->SaveCheckpoint(path).ok());
  auto restored = session->RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->stream->generation(), 0u);
  EXPECT_EQ(StreamTestPeer::Snapshot(*restored->stream), nullptr);
  // But the trees are live: an immediate Remine works.
  EXPECT_TRUE(restored->stream->Remine().ok());
  std::remove(path.c_str());
}

TEST(StreamCheckpointTest, DictionariesTravelWithTheCheckpoint) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    ManualRemine());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  std::vector<Dictionary> dicts(1);
  dicts[0].Encode("alpha");
  dicts[0].Encode("beta");
  const std::string path = TempPath("dicts.ckpt");
  ASSERT_TRUE(session->SaveCheckpoint(**stream, path, dicts).ok());
  auto restored = session->RestoreCheckpoint(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->dictionaries.size(), 1u);
  EXPECT_EQ(restored->dictionaries[0].Decode(1.0).ValueOrDie(), "beta");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fault injection: every corruption is a clean, descriptive Status.

// Full restore attempt over possibly-corrupt bytes; must never crash.
Status TryRestore(const std::string& bytes) {
  const std::string path =
      testing::TempDir() + "/fault_injected.ckpt";
  WriteFileBytes(path, bytes);
  auto restored = StreamingMiner::RestoreFromFile(
      path, TestConfig(), /*executor=*/nullptr, /*registry=*/nullptr);
  std::remove(path.c_str());
  return restored.ok() ? Status::OK() : restored.status();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new PlantedDataset(TestData());
    auto session = TestSession();
    ASSERT_TRUE(session.ok());
    const std::string path =
        MakeCheckpoint(*session, *data_, "fault_base.ckpt");
    bytes_ = new std::string(ReadFileBytes(path));
    std::remove(path.c_str());
    ASSERT_GT(bytes_->size(), 1000u);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete bytes_;
    data_ = nullptr;
    bytes_ = nullptr;
  }
  static PlantedDataset* data_;
  static std::string* bytes_;
};

PlantedDataset* FaultInjectionTest::data_ = nullptr;
std::string* FaultInjectionTest::bytes_ = nullptr;

TEST_F(FaultInjectionTest, IntactBaselineRestores) {
  EXPECT_TRUE(TryRestore(*bytes_).ok());
}

TEST_F(FaultInjectionTest, TruncationsAtEveryLayerFailCleanly) {
  const size_t n = bytes_->size();
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{19}, size_t{20},
                     size_t{21}, n / 4, n / 2, n - 100, n - 1}) {
    Status s = TryRestore(bytes_->substr(0, len));
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " bytes must fail";
    EXPECT_FALSE(s.message().empty());
  }
}

TEST_F(FaultInjectionTest, BitFlipsAnywhereFailCleanly) {
  // A flip in any payload byte trips that section's CRC; a flip in the
  // framing (magic, header, ids, lengths, the CRCs themselves) trips the
  // framing checks. Sample the whole file with a prime stride.
  for (size_t pos = 0; pos < bytes_->size(); pos += 131) {
    for (int bit : {0, 7}) {
      std::string corrupt = *bytes_;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      Status s = TryRestore(corrupt);
      EXPECT_FALSE(s.ok()) << "flip at byte " << pos << " bit " << bit
                           << " must be detected";
    }
  }
}

TEST_F(FaultInjectionTest, BadMagicNamesTheProblem) {
  std::string corrupt = *bytes_;
  corrupt[0] = 'X';
  Status s = TryRestore(corrupt);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s;
}

TEST_F(FaultInjectionTest, FutureFormatVersionIsRefusedWithUpgradeHint) {
  // Raise format_version to 99 and fix up the header CRC so only the
  // version check can object.
  std::string corrupt = *bytes_;
  corrupt[8] = 99;
  const uint32_t crc = persist::Crc32(std::string_view(corrupt).substr(0, 16));
  for (int i = 0; i < 4; ++i) {
    corrupt[16 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  Status s = TryRestore(corrupt);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("newer"), std::string::npos) << s;
}

TEST_F(FaultInjectionTest, TrailingGarbageIsRefused)
{
  Status s = TryRestore(*bytes_ + std::string(13, 'z'));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trailing"), std::string::npos) << s;
}

TEST_F(FaultInjectionTest, MissingSectionIsRefused) {
  // Rebuild the container without the builder section: framing is valid,
  // CRCs all pass, but the restore must notice the missing section.
  auto reader = CheckpointReader::Parse(*bytes_);
  ASSERT_TRUE(reader.ok());
  CheckpointWriter writer;
  for (uint32_t id : reader->section_ids()) {
    if (id == static_cast<uint32_t>(SectionId::kBuilder)) continue;
    writer.AddSection(static_cast<SectionId>(id),
                      std::string(reader->Section(static_cast<SectionId>(id))
                                      .ValueOrDie()));
  }
  Status s = TryRestore(writer.Serialize());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("builder"), std::string::npos) << s;
}

TEST_F(FaultInjectionTest, SwappedSectionPayloadsAreRefused) {
  // Put the schema payload in the partition slot and vice versa: every CRC
  // is valid, so only the content decoders can (and must) object.
  auto reader = CheckpointReader::Parse(*bytes_);
  ASSERT_TRUE(reader.ok());
  CheckpointWriter writer;
  for (uint32_t id : reader->section_ids()) {
    SectionId sid = static_cast<SectionId>(id);
    SectionId source = sid;
    if (sid == SectionId::kSchema) source = SectionId::kPartition;
    if (sid == SectionId::kPartition) source = SectionId::kSchema;
    writer.AddSection(sid,
                      std::string(reader->Section(source).ValueOrDie()));
  }
  EXPECT_FALSE(TryRestore(writer.Serialize()).ok());
}

}  // namespace
}  // namespace dar
