#include "core/generalized_qar.h"

#include <gtest/gtest.h>

#include "datagen/planted.h"

namespace dar {
namespace {

DarConfig SmallConfig() {
  DarConfig config;
  config.memory_budget_bytes = 8u << 20;
  config.frequency_fraction = 0.05;
  return config;
}

TEST(GeneralizedQarTest, FindsPlantedClusterRules) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 21);
  auto data = GeneratePlanted(spec, 3000, 22);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  GeneralizedQarMiner miner(config, /*min_confidence=*/0.8);
  auto result = miner.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.empty());

  const ClusterSet& clusters = result->phase1.clusters;
  for (const auto& rule : result->rules) {
    EXPECT_GE(rule.confidence, 0.8);
    EXPECT_GT(rule.support_count, 0);
    // All clusters of a rule should belong to one planted pattern: their
    // centroids map to the same pattern index.
    int pattern = -1;
    for (const auto* side : {&rule.antecedent, &rule.consequent}) {
      for (size_t id : *side) {
        const FoundCluster& c = clusters.cluster(id);
        double centroid = c.acf.Centroid()[0];
        for (size_t k = 0; k < 3; ++k) {
          if (std::fabs(spec.parts[c.part].clusters[k].center[0] - centroid) <
              20) {
            if (pattern == -1) pattern = static_cast<int>(k);
            EXPECT_EQ(pattern, static_cast<int>(k));
          }
        }
      }
    }
  }
}

TEST(GeneralizedQarTest, SupportCountsConsistent) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 23);
  auto data = GeneratePlanted(spec, 1000, 24);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(2, 80.0);
  GeneralizedQarMiner miner(config, 0.5);
  auto result = miner.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  for (const auto& rule : result->rules) {
    EXPECT_GE(rule.support_count, result->phase1.frequency_threshold);
    EXPECT_NEAR(rule.support,
                static_cast<double>(rule.support_count) / 1000.0, 1e-12);
    EXPECT_LE(rule.confidence, 1.0 + 1e-12);
  }
}

TEST(GeneralizedQarTest, FrequentItemsetsDownwardClosed) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 2, 0.0, 25);
  auto data = GeneratePlanted(spec, 800, 26);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  GeneralizedQarMiner miner(config, 0.5);
  auto result = miner.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  std::set<Itemset> frequent;
  for (const auto& f : result->frequent_itemsets) frequent.insert(f.items);
  for (const auto& f : result->frequent_itemsets) {
    if (f.items.size() < 2) continue;
    for (size_t drop = 0; drop < f.items.size(); ++drop) {
      Itemset sub;
      for (size_t i = 0; i < f.items.size(); ++i) {
        if (i != drop) sub.push_back(f.items[i]);
      }
      EXPECT_TRUE(frequent.count(sub));
    }
  }
}

TEST(GeneralizedQarTest, RuleToStringReadable) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 27);
  auto data = GeneratePlanted(spec, 500, 28);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(2, 80.0);
  GeneralizedQarMiner miner(config, 0.5);
  auto result = miner.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.empty());
  std::string s = result->rules[0].ToString(
      result->phase1.clusters, data->relation.schema(), data->partition);
  EXPECT_NE(s.find("=>"), std::string::npos);
  EXPECT_NE(s.find("confidence="), std::string::npos);
}

}  // namespace
}  // namespace dar
