// DarConfig::Validate(): every documented invalid knob must be rejected
// with a descriptive InvalidArgument naming the offender, and
// Session::Builder::Build must refuse to construct on any of them.

#include "core/config.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/session.h"

namespace dar {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_TRUE(DarConfig{}.Validate().ok());
}

TEST(ConfigValidateTest, TypicalTunedConfigIsValid) {
  DarConfig config;
  config.frequency_fraction = 0.03;
  config.initial_diameters = {5.0, 3000.0};
  config.degree_thresholds = {5.0, 4000.0};
  config.density_thresholds = {2.0, 1500.0};
  config.phase2_leniency = 2.5;
  EXPECT_TRUE(config.Validate().ok());
}

// Expects rejection and that the message mentions `knob`.
void ExpectRejected(const DarConfig& config, const std::string& knob) {
  Status s = config.Validate();
  ASSERT_TRUE(s.IsInvalidArgument()) << "knob: " << knob;
  EXPECT_NE(s.message().find(knob), std::string::npos)
      << "message \"" << s.message() << "\" does not name " << knob;
}

TEST(ConfigValidateTest, RejectsZeroMemoryBudget) {
  DarConfig config;
  config.memory_budget_bytes = 0;
  ExpectRejected(config, "memory_budget_bytes");
}

TEST(ConfigValidateTest, RejectsFrequencyFractionOutOfRange) {
  for (double bad : {0.0, -0.1, 1.5, kNaN}) {
    DarConfig config;
    config.frequency_fraction = bad;
    ExpectRejected(config, "frequency_fraction");
  }
}

TEST(ConfigValidateTest, RejectsBadOutlierFraction) {
  for (double bad : {-0.25, kNaN}) {
    DarConfig config;
    config.outlier_fraction = bad;
    ExpectRejected(config, "outlier_fraction");
  }
}

TEST(ConfigValidateTest, RejectsBadInitialDiameters) {
  for (double bad : {-1.0, kNaN}) {
    DarConfig config;
    config.initial_diameters = {5.0, bad};
    ExpectRejected(config, "initial_diameters[1]");
  }
}

TEST(ConfigValidateTest, RejectsBadDegreeThreshold) {
  for (double bad : {-2.0, kNaN}) {
    DarConfig config;
    config.degree_threshold = bad;
    ExpectRejected(config, "degree_threshold");
  }
}

TEST(ConfigValidateTest, RejectsBadPerPartDegreeThresholds) {
  DarConfig config;
  config.degree_thresholds = {kNaN};
  ExpectRejected(config, "degree_thresholds[0]");
}

TEST(ConfigValidateTest, RejectsBadDensityThresholds) {
  DarConfig config;
  config.density_thresholds = {1.0, -3.0};
  ExpectRejected(config, "density_thresholds[1]");
}

TEST(ConfigValidateTest, RejectsLeniencyBelowOne) {
  for (double bad : {0.99, 0.0, -1.0, kNaN}) {
    DarConfig config;
    config.phase2_leniency = bad;
    ExpectRejected(config, "phase2_leniency");
  }
}

TEST(ConfigValidateTest, RejectsZeroArities) {
  DarConfig config;
  config.max_antecedent = 0;
  ExpectRejected(config, "max_antecedent");
  config = DarConfig{};
  config.max_consequent = 0;
  ExpectRejected(config, "max_consequent");
}

TEST(ConfigValidateTest, RejectsMismatchedPerPartVectorSizes) {
  DarConfig config;
  config.initial_diameters = {1.0, 2.0, 3.0};
  config.degree_thresholds = {1.0, 2.0};
  ExpectRejected(config, "per-part vector sizes disagree");

  // Empty vectors are wildcards, not mismatches.
  config.degree_thresholds.clear();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigValidateTest, RejectsDegenerateTreeKnobs) {
  DarConfig config;
  config.tree.branching_factor = 1;
  ExpectRejected(config, "branching_factor");

  config = DarConfig{};
  config.tree.leaf_capacity = 0;
  ExpectRejected(config, "leaf_capacity");

  config = DarConfig{};
  config.tree.threshold_growth = 1.0;
  ExpectRejected(config, "threshold_growth");

  config = DarConfig{};
  config.tree.initial_threshold = -0.5;
  ExpectRejected(config, "initial_threshold");

  config = DarConfig{};
  config.tree.max_rebuilds_per_insert = 0;
  ExpectRejected(config, "max_rebuilds_per_insert");
}

TEST(ConfigValidateTest, SessionRefusesInvalidConfig) {
  DarConfig config;
  config.phase2_leniency = 0.5;
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());
  EXPECT_NE(session.status().message().find("phase2_leniency"),
            std::string::npos);
}

TEST(ConfigValidateTest, SessionBuildsOnValidConfig) {
  auto session = Session::Builder().WithConfig(DarConfig{}).Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->executor().parallelism(), 1);  // serial default
}

}  // namespace
}  // namespace dar
