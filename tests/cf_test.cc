#include "birch/cf.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dar {
namespace {

using testutil::BruteCentroid;
using testutil::BruteDiameterDiscrete;
using testutil::BruteDiameterRms;
using testutil::Points;
using testutil::RandomDiscretePoints;
using testutil::RandomPoints;

CfVector Summarize(const Points& pts, MetricKind metric) {
  CfVector cf(pts.empty() ? 1 : pts[0].size(), metric);
  for (const auto& p : pts) cf.AddPoint(p);
  return cf;
}

TEST(CfVectorTest, EmptyState) {
  CfVector cf(2, MetricKind::kEuclidean);
  EXPECT_EQ(cf.n(), 0);
  EXPECT_DOUBLE_EQ(cf.Diameter(), 0.0);
  EXPECT_DOUBLE_EQ(cf.Radius(), 0.0);
}

TEST(CfVectorTest, SinglePointMoments) {
  CfVector cf(2, MetricKind::kEuclidean);
  cf.AddPoint(std::vector<double>{3, -4});
  EXPECT_EQ(cf.n(), 1);
  EXPECT_DOUBLE_EQ(cf.ls()[0], 3);
  EXPECT_DOUBLE_EQ(cf.ss()[1], 16);
  EXPECT_DOUBLE_EQ(cf.Diameter(), 0.0);
  EXPECT_DOUBLE_EQ(cf.Radius(), 0.0);
  EXPECT_EQ(cf.Centroid(), (std::vector<double>{3, -4}));
}

TEST(CfVectorTest, MinMaxTracksBoundingBox) {
  CfVector cf(1, MetricKind::kEuclidean);
  for (double v : {5.0, -2.0, 9.0, 1.0}) {
    cf.AddPoint(std::vector<double>{v});
  }
  EXPECT_DOUBLE_EQ(cf.min()[0], -2.0);
  EXPECT_DOUBLE_EQ(cf.max()[0], 9.0);
}

TEST(CfVectorTest, TwoPointDiameterIsDistance) {
  CfVector cf(2, MetricKind::kEuclidean);
  cf.AddPoint(std::vector<double>{0, 0});
  cf.AddPoint(std::vector<double>{3, 4});
  // For exactly two points the RMS pairwise distance is the distance.
  EXPECT_NEAR(cf.Diameter(), 5.0, 1e-12);
}

TEST(CfVectorTest, DiameterMatchesBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 40));
    size_t dim = static_cast<size_t>(rng.UniformInt(1, 4));
    Points pts = RandomPoints(rng, n, dim);
    CfVector cf = Summarize(pts, MetricKind::kEuclidean);
    EXPECT_NEAR(cf.Diameter(), BruteDiameterRms(pts), 1e-8);
  }
}

TEST(CfVectorTest, RadiusMatchesBruteForce) {
  Rng rng(18);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    Points pts = RandomPoints(rng, n, 3);
    CfVector cf = Summarize(pts, MetricKind::kEuclidean);
    auto c = BruteCentroid(pts);
    double sum = 0;
    for (const auto& p : pts) sum += SquaredEuclidean(p, c);
    EXPECT_NEAR(cf.Radius(), std::sqrt(sum / pts.size()), 1e-8);
  }
}

TEST(CfVectorTest, CentroidMatchesBruteForce) {
  Rng rng(19);
  Points pts = RandomPoints(rng, 25, 2);
  CfVector cf = Summarize(pts, MetricKind::kEuclidean);
  auto expect = BruteCentroid(pts);
  auto got = cf.Centroid();
  for (size_t d = 0; d < expect.size(); ++d) {
    EXPECT_NEAR(got[d], expect[d], 1e-9);
  }
}

TEST(CfVectorTest, AdditivityTheorem) {
  // CF(S1 u S2) == Merge(CF(S1), CF(S2)) in every component.
  Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    Points a = RandomPoints(rng, 12, 2);
    Points b = RandomPoints(rng, 7, 2);
    CfVector cfa = Summarize(a, MetricKind::kEuclidean);
    CfVector cfb = Summarize(b, MetricKind::kEuclidean);
    cfa.Merge(cfb);
    Points all = a;
    all.insert(all.end(), b.begin(), b.end());
    CfVector cfall = Summarize(all, MetricKind::kEuclidean);
    EXPECT_EQ(cfa.n(), cfall.n());
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_NEAR(cfa.ls()[d], cfall.ls()[d], 1e-9);
      EXPECT_NEAR(cfa.ss()[d], cfall.ss()[d], 1e-9);
      EXPECT_DOUBLE_EQ(cfa.min()[d], cfall.min()[d]);
      EXPECT_DOUBLE_EQ(cfa.max()[d], cfall.max()[d]);
    }
    EXPECT_NEAR(cfa.Diameter(), cfall.Diameter(), 1e-9);
  }
}

TEST(CfVectorTest, DiameterWithPointMatchesActualAdd) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Points pts = RandomPoints(rng, 10, 2);
    CfVector cf = Summarize(pts, MetricKind::kEuclidean);
    std::vector<double> x = {rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    double predicted = cf.DiameterWithPoint(x);
    cf.AddPoint(x);
    EXPECT_NEAR(predicted, cf.Diameter(), 1e-9);
  }
}

TEST(CfVectorTest, DiameterWithMergeMatchesActualMerge) {
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    Points a = RandomPoints(rng, 8, 2);
    Points b = RandomPoints(rng, 5, 2);
    CfVector cfa = Summarize(a, MetricKind::kEuclidean);
    CfVector cfb = Summarize(b, MetricKind::kEuclidean);
    double predicted = cfa.DiameterWithMerge(cfb);
    cfa.Merge(cfb);
    EXPECT_NEAR(predicted, cfa.Diameter(), 1e-9);
  }
}

// --- discrete-metric (histogram) behaviour ---

TEST(CfVectorTest, DiscreteHistogramCounts) {
  CfVector cf(1, MetricKind::kDiscrete);
  for (double v : {1.0, 1.0, 2.0}) cf.AddPoint(std::vector<double>{v});
  ASSERT_TRUE(cf.has_histogram());
  EXPECT_EQ(cf.histogram(0).at(1.0), 2);
  EXPECT_EQ(cf.histogram(0).at(2.0), 1);
}

TEST(CfVectorTest, DiscreteDiameterMatchesBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 30));
    size_t dim = static_cast<size_t>(rng.UniformInt(1, 3));
    Points pts = RandomDiscretePoints(rng, n, dim);
    CfVector cf = Summarize(pts, MetricKind::kDiscrete);
    EXPECT_NEAR(cf.Diameter(), BruteDiameterDiscrete(pts), 1e-9);
  }
}

TEST(CfVectorTest, DiscreteDiameterZeroIffPure) {
  // Theorem 5.1's engine: a cluster has diameter 0 iff all values equal.
  CfVector pure(1, MetricKind::kDiscrete);
  for (int i = 0; i < 5; ++i) pure.AddPoint(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(pure.Diameter(), 0.0);

  CfVector mixed(1, MetricKind::kDiscrete);
  mixed.AddPoint(std::vector<double>{7.0});
  mixed.AddPoint(std::vector<double>{8.0});
  EXPECT_GT(mixed.Diameter(), 0.0);
}

TEST(CfVectorTest, DiscreteDiameterWithPointMatchesAdd) {
  Rng rng(24);
  for (int trial = 0; trial < 10; ++trial) {
    Points pts = RandomDiscretePoints(rng, 9, 2);
    CfVector cf = Summarize(pts, MetricKind::kDiscrete);
    std::vector<double> x = {double(rng.UniformInt(0, 3)),
                             double(rng.UniformInt(0, 3))};
    double predicted = cf.DiameterWithPoint(x);
    cf.AddPoint(x);
    EXPECT_NEAR(predicted, cf.Diameter(), 1e-9);
  }
}

TEST(CfVectorTest, DiscreteDiameterWithMergeMatchesMerge) {
  Rng rng(25);
  for (int trial = 0; trial < 10; ++trial) {
    Points a = RandomDiscretePoints(rng, 7, 1);
    Points b = RandomDiscretePoints(rng, 6, 1);
    CfVector cfa = Summarize(a, MetricKind::kDiscrete);
    CfVector cfb = Summarize(b, MetricKind::kDiscrete);
    double predicted = cfa.DiameterWithMerge(cfb);
    cfa.Merge(cfb);
    EXPECT_NEAR(predicted, cfa.Diameter(), 1e-9);
  }
}

TEST(CfVectorTest, DiscreteMergeAddsHistograms) {
  CfVector a(1, MetricKind::kDiscrete), b(1, MetricKind::kDiscrete);
  a.AddPoint(std::vector<double>{1.0});
  b.AddPoint(std::vector<double>{1.0});
  b.AddPoint(std::vector<double>{3.0});
  a.Merge(b);
  EXPECT_EQ(a.histogram(0).at(1.0), 2);
  EXPECT_EQ(a.histogram(0).at(3.0), 1);
}

TEST(CfVectorTest, ApproxBytesGrowsWithHistogram) {
  CfVector a(1, MetricKind::kDiscrete);
  size_t empty = a.ApproxBytes();
  for (int v = 0; v < 20; ++v) {
    a.AddPoint(std::vector<double>{double(v)});
  }
  EXPECT_GT(a.ApproxBytes(), empty);
}

TEST(CfVectorTest, ToStringMentionsCount) {
  CfVector cf(1, MetricKind::kEuclidean);
  cf.AddPoint(std::vector<double>{2.0});
  EXPECT_NE(cf.ToString().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace dar
