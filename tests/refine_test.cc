#include "birch/refine.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dar {
namespace {

std::shared_ptr<const AcfLayout> OnePartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"}};
  return layout;
}

Acf MakeCluster(std::shared_ptr<const AcfLayout> layout,
                std::initializer_list<double> values) {
  Acf acf(layout, 0);
  for (double v : values) acf.AddRow({{v}});
  return acf;
}

int64_t TotalMass(const std::vector<Acf>& clusters) {
  int64_t mass = 0;
  for (const auto& c : clusters) mass += c.n();
  return mass;
}

TEST(RefineTest, MergesFragmentsOfOneCluster) {
  auto layout = OnePartLayout();
  std::vector<Acf> fragments;
  fragments.push_back(MakeCluster(layout, {10.0, 10.5}));
  fragments.push_back(MakeCluster(layout, {11.0, 11.5}));
  fragments.push_back(MakeCluster(layout, {10.2, 11.2}));
  RefineOptions opts;
  opts.diameter_threshold = 3.0;
  auto refined = RefineClusters(std::move(fragments), opts);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].n(), 6);
  EXPECT_NEAR(refined[0].Centroid()[0], 10.733, 0.01);
}

TEST(RefineTest, KeepsSeparatedClustersApart) {
  auto layout = OnePartLayout();
  std::vector<Acf> clusters;
  clusters.push_back(MakeCluster(layout, {10.0, 10.5}));
  clusters.push_back(MakeCluster(layout, {90.0, 90.5}));
  RefineOptions opts;
  opts.diameter_threshold = 3.0;
  auto refined = RefineClusters(std::move(clusters), opts);
  EXPECT_EQ(refined.size(), 2u);
}

TEST(RefineTest, ZeroThresholdIsNoOp) {
  auto layout = OnePartLayout();
  std::vector<Acf> clusters;
  clusters.push_back(MakeCluster(layout, {1.0}));
  clusters.push_back(MakeCluster(layout, {1.0}));
  RefineOptions opts;
  opts.diameter_threshold = 0;
  auto refined = RefineClusters(std::move(clusters), opts);
  EXPECT_EQ(refined.size(), 2u);
}

TEST(RefineTest, MaxMergesCap) {
  auto layout = OnePartLayout();
  std::vector<Acf> clusters;
  for (int i = 0; i < 6; ++i) {
    clusters.push_back(MakeCluster(layout, {10.0 + 0.1 * i}));
  }
  RefineOptions opts;
  opts.diameter_threshold = 5.0;
  opts.max_merges = 2;
  auto refined = RefineClusters(std::move(clusters), opts);
  EXPECT_EQ(refined.size(), 4u);  // 6 - 2 merges
}

TEST(RefineTest, MassConservedOnRandomInput) {
  Rng rng(81);
  auto layout = OnePartLayout();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Acf> clusters;
    int64_t mass = 0;
    size_t k = static_cast<size_t>(rng.UniformInt(2, 20));
    for (size_t i = 0; i < k; ++i) {
      Acf acf(layout, 0);
      int points = static_cast<int>(rng.UniformInt(1, 10));
      double base = rng.Uniform(0, 100);
      for (int pt = 0; pt < points; ++pt) {
        acf.AddRow({{base + rng.Uniform(-1, 1)}});
      }
      mass += acf.n();
      clusters.push_back(std::move(acf));
    }
    RefineOptions opts;
    opts.diameter_threshold = rng.Uniform(0.5, 20.0);
    auto refined = RefineClusters(std::move(clusters), opts);
    EXPECT_EQ(TotalMass(refined), mass);
    EXPECT_LE(refined.size(), k);
    EXPECT_GE(refined.size(), 1u);
  }
}

TEST(RefineTest, MergedClustersRespectDiameterBound) {
  Rng rng(82);
  auto layout = OnePartLayout();
  std::vector<Acf> clusters;
  for (int i = 0; i < 15; ++i) {
    Acf acf(layout, 0);
    double base = rng.Uniform(0, 50);
    for (int pt = 0; pt < 4; ++pt) acf.AddRow({{base + rng.Uniform(0, 1)}});
    clusters.push_back(std::move(acf));
  }
  RefineOptions opts;
  opts.diameter_threshold = 6.0;
  size_t before = clusters.size();
  auto refined = RefineClusters(std::move(clusters), opts);
  EXPECT_LT(refined.size(), before);  // dense in [0,50]: some merges
  for (const auto& c : refined) {
    // Any cluster produced by a merge satisfies the bound; original
    // clusters here all have diameter < 1 anyway.
    EXPECT_LE(c.Diameter(), opts.diameter_threshold + 1e-9);
  }
}

TEST(RefineTest, CarriesImageSummariesThroughMerges) {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  std::vector<Acf> clusters;
  Acf a(layout, 0), b(layout, 0);
  a.AddRow({{10.0}, {100.0}});
  b.AddRow({{10.5}, {200.0}});
  clusters.push_back(std::move(a));
  clusters.push_back(std::move(b));
  RefineOptions opts;
  opts.diameter_threshold = 2.0;
  auto refined = RefineClusters(std::move(clusters), opts);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_DOUBLE_EQ(refined[0].image(1).ls()[0], 300.0);
}

}  // namespace
}  // namespace dar
