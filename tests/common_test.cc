#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/str_util.h"

namespace dar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "missing");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::IOError("disk");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIOError());
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    DAR_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto makes = [](bool good) -> Result<int> {
    if (good) return 7;
    return Status::InvalidArgument("no");
  };
  auto consumer = [&](bool good) -> Result<int> {
    DAR_ASSIGN_OR_RETURN(int v, makes(good));
    return v * 2;
  };
  EXPECT_EQ(*consumer(true), 14);
  EXPECT_TRUE(consumer(false).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(StrUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StrUtilTest, SplitSingleField) {
  auto parts = Split("solo", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, ParseDoubleAcceptsNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(StrUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StrUtilTest, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(*ParseInt("123"), 123);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(w), 1u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  double t0 = w.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  EXPECT_GE(w.ElapsedSeconds(), t0);
}

}  // namespace
}  // namespace dar
