// Tests for dar::quality — pluggable interestingness measures pinned
// against brute-force contingency tables, the executor-sharded stats scan
// against a per-row reference count, redundancy pruning, and the
// SnapshotDiff classification edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "birch/acf.h"
#include "common/executor.h"
#include "common/random.h"
#include "core/model.h"
#include "core/rule_stats.h"
#include "core/rules.h"
#include "quality/diff.h"
#include "quality/interval_match.h"
#include "quality/measure.h"
#include "quality/prune.h"
#include "quality/scored_rules.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace dar::quality {
namespace {

// --- Synthetic-cluster scaffolding: 1-d Euclidean parts, clusters built
// from explicit full tuples so every image (and thus every bounding box)
// is exactly known. ---

std::shared_ptr<const AcfLayout> MakeLayout(size_t num_parts) {
  auto layout = std::make_shared<AcfLayout>();
  for (size_t p = 0; p < num_parts; ++p) {
    layout->parts.push_back(
        {1, MetricKind::kEuclidean, "p" + std::to_string(p)});
  }
  return layout;
}

Acf MakeAcf(const std::shared_ptr<const AcfLayout>& layout, size_t part,
            const std::vector<std::vector<double>>& tuples) {
  Acf acf(layout, part);
  for (const auto& tuple : tuples) {
    PartedRow row;
    row.reserve(tuple.size());
    for (const double v : tuple) row.push_back({v});
    acf.AddRow(row);
  }
  return acf;
}

// Two parts; clusters 0/1 live on part 0 with own-part boxes [0,10] and
// [1,11] (Jaccard 9/11), cluster 2 on part 0 at [50,60] (disjoint from
// both), clusters 3/4 on part 1 at [0,10] and [1,11], cluster 5 on part 1
// at [50,60].
ClusterSet MakeOverlapClusters(std::shared_ptr<const AcfLayout> layout) {
  std::vector<FoundCluster> clusters;
  clusters.push_back({0, 0, MakeAcf(layout, 0, {{0, 0}, {10, 10}})});
  clusters.push_back({1, 0, MakeAcf(layout, 0, {{1, 1}, {11, 11}})});
  clusters.push_back({2, 0, MakeAcf(layout, 0, {{50, 50}, {60, 60}})});
  clusters.push_back({3, 1, MakeAcf(layout, 1, {{0, 0}, {10, 10}})});
  clusters.push_back({4, 1, MakeAcf(layout, 1, {{1, 1}, {11, 11}})});
  clusters.push_back({5, 1, MakeAcf(layout, 1, {{50, 50}, {60, 60}})});
  return ClusterSet(std::move(layout), std::move(clusters));
}

DistanceRule MakeRule(std::vector<size_t> antecedent,
                      std::vector<size_t> consequent, double degree) {
  DistanceRule rule;
  rule.antecedent = std::move(antecedent);
  rule.consequent = std::move(consequent);
  rule.degree = degree;
  return rule;
}

// --- Measures pinned against the brute-force 2x2 table. The expected
// values are computed here straight from the a/b/c/d cells, independently
// of the measure implementations. ---

RuleStats Table(int64_t a, int64_t b, int64_t c, int64_t d) {
  RuleStats stats;
  stats.both = a;
  stats.antecedent = a + b;
  stats.consequent = a + c;
  stats.total = a + b + c + d;
  return stats;
}

TEST(MeasureTest, PinnedAgainstBruteForceContingencyTable) {
  // a = both, b = antecedent-only, c = consequent-only, d = neither.
  const struct {
    int64_t a, b, c, d;
  } tables[] = {{20, 20, 10, 50}, {1, 0, 0, 99}, {7, 3, 11, 4},
                {5, 5, 5, 5},     {0, 10, 10, 80}};
  const auto support = MakeSupportMeasure();
  const auto confidence = MakeConfidenceMeasure();
  const auto lift = MakeLiftMeasure();
  const auto conviction = MakeConvictionMeasure();
  const auto chi2 = MakeChiSquaredMeasure();
  for (const auto& t : tables) {
    const RuleStats stats = Table(t.a, t.b, t.c, t.d);
    const double a = static_cast<double>(t.a);
    const double b = static_cast<double>(t.b);
    const double c = static_cast<double>(t.c);
    const double d = static_cast<double>(t.d);
    const double n = a + b + c + d;

    EXPECT_DOUBLE_EQ(support->Score(stats), a / n);
    EXPECT_DOUBLE_EQ(confidence->Score(stats), a / (a + b));
    EXPECT_DOUBLE_EQ(lift->Score(stats), (a / (a + b)) / ((a + c) / n));
    const double conf = a / (a + b);
    const double expected_conviction =
        conf >= 1.0 ? kMaxConviction
                    : std::min(kMaxConviction,
                               (1.0 - (a + c) / n) / (1.0 - conf));
    EXPECT_DOUBLE_EQ(conviction->Score(stats), expected_conviction);
    const double margins = (a + b) * (c + d) * (a + c) * (b + d);
    const double expected_chi2 =
        margins == 0 ? 0.0
                     : n * (a * d - b * c) * (a * d - b * c) / margins;
    EXPECT_DOUBLE_EQ(chi2->Score(stats), expected_chi2);
  }
}

TEST(MeasureTest, DegenerateTablesAreFiniteZeros) {
  const RuleStats empty;  // total == 0
  const RuleStats no_antecedent = Table(0, 0, 10, 90);
  const RuleStats all_consequent = Table(10, 0, 0, 0);  // confidence 1
  for (const auto& make :
       {MakeSupportMeasure, MakeConfidenceMeasure, MakeLiftMeasure,
        MakeConvictionMeasure, MakeChiSquaredMeasure}) {
    const auto measure = make();
    EXPECT_EQ(measure->Score(empty), 0.0) << measure->name();
    EXPECT_TRUE(std::isfinite(measure->Score(no_antecedent)))
        << measure->name();
    EXPECT_TRUE(std::isfinite(measure->Score(all_consequent)))
        << measure->name();
  }
  // Perfect confidence hits the conviction cap, never infinity.
  EXPECT_DOUBLE_EQ(MakeConvictionMeasure()->Score(all_consequent),
                   kMaxConviction);
}

// --- Registry behavior. ---

class BothCountMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "both_count";
  }
  [[nodiscard]] double Score(const RuleStats& stats) const override {
    return static_cast<double>(stats.both);
  }
};

class NamelessMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override { return ""; }
  [[nodiscard]] double Score(const RuleStats&) const override { return 0; }
};

TEST(MeasureRegistryTest, BuiltinsPreRegisteredAndUserMeasuresAdded) {
  MeasureRegistry registry;
  EXPECT_EQ(registry.size(), 5u);
  EXPECT_NE(registry.Find("lift"), nullptr);
  EXPECT_EQ(registry.Find("both_count"), nullptr);

  ASSERT_TRUE(registry.Register(std::make_unique<BothCountMeasure>()).ok());
  ASSERT_NE(registry.Find("both_count"), nullptr);
  EXPECT_DOUBLE_EQ(registry.Find("both_count")->Score(Table(7, 1, 1, 1)),
                   7.0);

  // Duplicate (built-in or user) and empty names are rejected.
  EXPECT_TRUE(registry.Register(MakeLiftMeasure())
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(registry.Register(std::make_unique<BothCountMeasure>())
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(registry.Register(std::make_unique<NamelessMeasure>())
                  .IsInvalidArgument());
}

TEST(MeasureRegistryTest, ScoreRulesRejectsUnknownAndDuplicateRequests) {
  MeasureRegistry registry;
  std::vector<RuleStats> stats = {Table(5, 5, 5, 5)};
  const std::vector<std::string> unknown = {"lift", "tachyon_flux"};
  auto result = ScoreRules(stats, registry, unknown);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  // The error names the available measures for discovery.
  EXPECT_NE(result.status().message().find("lift"), std::string::npos);

  const std::vector<std::string> duplicate = {"lift", "lift"};
  EXPECT_TRUE(
      ScoreRules(stats, registry, duplicate).status().IsInvalidArgument());
}

// --- The contingency scan against a per-row brute-force count, serial
// and 8-thread results bit-identical. ---

TEST(RuleStatsTest, ScanMatchesBruteForce) {
  auto schema = Schema::Make({{"x", AttributeKind::kInterval},
                              {"y", AttributeKind::kInterval}});
  ASSERT_TRUE(schema.ok());
  auto partition = AttributePartition::Make(
      *schema, {{{"x"}, MetricKind::kEuclidean},
                {{"y"}, MetricKind::kEuclidean}});
  ASSERT_TRUE(partition.ok());

  auto layout = MakeLayout(2);
  std::vector<FoundCluster> found;
  found.push_back({0, 0, MakeAcf(layout, 0, {{0, 0}, {10, 10}})});
  found.push_back({1, 0, MakeAcf(layout, 0, {{90, 90}, {100, 100}})});
  found.push_back({2, 1, MakeAcf(layout, 1, {{0, 0}, {10, 10}})});
  found.push_back({3, 1, MakeAcf(layout, 1, {{90, 90}, {100, 100}})});
  const ClusterSet clusters(layout, std::move(found));

  // Correlated mixture plus uniform noise, so every cell of every rule's
  // table is populated.
  Relation rel(*schema);
  Rng rng(1997);
  for (size_t i = 0; i < 500; ++i) {
    double x, y;
    if (rng.Bernoulli(0.4)) {
      x = rng.Uniform(0, 12);
      y = rng.Bernoulli(0.8) ? rng.Uniform(0, 12) : rng.Uniform(88, 100);
    } else {
      x = rng.Uniform(0, 100);
      y = rng.Uniform(0, 100);
    }
    ASSERT_TRUE(rel.AppendRow({x, y}).ok());
  }

  const std::vector<DistanceRule> rules = {MakeRule({0}, {2}, 1.0),
                                           MakeRule({1}, {3}, 2.0),
                                           MakeRule({0}, {3}, 3.0)};

  auto serial = ComputeRuleStats(rel, *partition, clusters, rules, nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), rules.size());

  // Brute force: assign each row once per part, then count per rule.
  std::vector<RuleStats> expected(rules.size());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    const std::vector<double> row = rel.Row(r);
    std::vector<size_t> assigned(2);
    for (size_t p = 0; p < 2; ++p) {
      auto id = clusters.AssignToCluster(p, {{row[p]}});
      ASSERT_TRUE(id.ok());
      assigned[p] = *id;
    }
    for (size_t k = 0; k < rules.size(); ++k) {
      auto matches = [&](const std::vector<size_t>& side) {
        for (const size_t id : side) {
          if (assigned[clusters.cluster(id).part] != id) return false;
        }
        return true;
      };
      ++expected[k].total;
      const bool a = matches(rules[k].antecedent);
      const bool c = matches(rules[k].consequent);
      if (a) ++expected[k].antecedent;
      if (c) ++expected[k].consequent;
      if (a && c) ++expected[k].both;
    }
  }
  for (size_t k = 0; k < rules.size(); ++k) {
    EXPECT_EQ((*serial)[k].total, expected[k].total) << "rule " << k;
    EXPECT_EQ((*serial)[k].antecedent, expected[k].antecedent) << "rule " << k;
    EXPECT_EQ((*serial)[k].consequent, expected[k].consequent) << "rule " << k;
    EXPECT_EQ((*serial)[k].both, expected[k].both) << "rule " << k;
  }

  // Identical at 8 threads (shard-ordered integer merge).
  ThreadPoolExecutor pool(8);
  auto parallel = ComputeRuleStats(rel, *partition, clusters, rules, &pool);
  ASSERT_TRUE(parallel.ok());
  for (size_t k = 0; k < rules.size(); ++k) {
    EXPECT_EQ((*serial)[k].both, (*parallel)[k].both);
    EXPECT_EQ((*serial)[k].antecedent, (*parallel)[k].antecedent);
    EXPECT_EQ((*serial)[k].consequent, (*parallel)[k].consequent);
    EXPECT_EQ((*serial)[k].total, (*parallel)[k].total);
  }

  // End-to-end scoring: scores[m][k] is exactly measure m over stats[k],
  // bit-identical across thread counts.
  MeasureRegistry registry;
  const std::vector<std::string> names = {"support", "confidence", "lift",
                                          "conviction", "chi2"};
  auto scored_serial = ScanAndScoreRules(rel, *partition, clusters, rules,
                                         registry, names, nullptr);
  auto scored_parallel = ScanAndScoreRules(rel, *partition, clusters, rules,
                                           registry, names, &pool);
  ASSERT_TRUE(scored_serial.ok());
  ASSERT_TRUE(scored_parallel.ok());
  ASSERT_EQ(scored_serial->scores.size(), names.size());
  for (size_t m = 0; m < names.size(); ++m) {
    const InterestingnessMeasure* measure = registry.Find(names[m]);
    ASSERT_NE(measure, nullptr);
    for (size_t k = 0; k < rules.size(); ++k) {
      const double score = scored_serial->scores[m][k];
      EXPECT_TRUE(std::isfinite(score));
      EXPECT_DOUBLE_EQ(score, measure->Score((*serial)[k]));
      EXPECT_EQ(score, scored_parallel->scores[m][k])
          << names[m] << " rule " << k;
    }
  }
}

// --- Redundancy pruning. ---

TEST(PruneTest, AbsorbsNearDuplicateIntoStrongerRepresentative) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  // r0 strongest (lowest degree); r1 same signature with ~0.82 Jaccard on
  // both sides; r2 same signature but disjoint antecedent box.
  const std::vector<DistanceRule> rules = {MakeRule({0}, {3}, 1.0),
                                           MakeRule({1}, {4}, 2.0),
                                           MakeRule({2}, {3}, 3.0)};
  PruneOptions options;
  options.min_overlap = 0.5;
  auto result = PruneRedundant(clusters, rules, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->representative, (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_EQ(result->representative_of, (std::vector<uint32_t>{0, 0, 2}));
  EXPECT_EQ(result->num_pruned, 1u);

  // Strictest setting: only bit-identical intervals merge, so nothing is
  // pruned here.
  options.min_overlap = 1.0;
  auto strict = PruneRedundant(clusters, rules, {}, options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->num_pruned, 0u);
}

TEST(PruneTest, DominanceKeepsRulesThatWinOnAnyMeasure) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> rules = {MakeRule({0}, {3}, 1.0),
                                           MakeRule({1}, {4}, 2.0)};
  // One score column where the near-duplicate BEATS the representative.
  const std::vector<std::vector<double>> scores = {{0.4, 0.9}};
  PruneOptions options;
  options.min_overlap = 0.5;
  options.require_dominance = true;
  auto dominated = PruneRedundant(clusters, rules, scores, options);
  ASSERT_TRUE(dominated.ok());
  EXPECT_EQ(dominated->num_pruned, 0u);  // r1 wins on the measure: kept

  options.require_dominance = false;
  auto loose = PruneRedundant(clusters, rules, scores, options);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->num_pruned, 1u);  // overlap alone decides
  EXPECT_EQ(loose->representative_of[1], 0u);
}

TEST(PruneTest, ValidatesOptionsAndScoreShape) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> rules = {MakeRule({0}, {3}, 1.0)};
  PruneOptions bad;
  bad.min_overlap = 1.5;
  EXPECT_TRUE(
      PruneRedundant(clusters, rules, {}, bad).status().IsInvalidArgument());

  const std::vector<std::vector<double>> short_column = {{}};
  EXPECT_TRUE(PruneRedundant(clusters, rules, short_column, PruneOptions{})
                  .status()
                  .IsInvalidArgument());
}

// --- Snapshot diffing. ---

TEST(DiffTest, EmptyVersusNonEmptyGenerations) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> rules = {MakeRule({0}, {3}, 1.0),
                                           MakeRule({1}, {4}, 2.0)};
  const std::vector<DistanceRule> none;

  auto born = DiffRuleSets(clusters, none, 1, clusters, rules, 2,
                           DiffOptions{});
  ASSERT_TRUE(born.ok());
  EXPECT_EQ(born->born, 2u);
  EXPECT_EQ(born->died, 0u);
  EXPECT_EQ(born->drifted, 0u);
  EXPECT_EQ(born->unchanged, 0u);
  ASSERT_EQ(born->records.size(), 2u);
  EXPECT_EQ(born->records[0].kind, DiffKind::kBorn);
  EXPECT_EQ(born->records[0].new_index, 0);
  EXPECT_EQ(born->records[0].old_index, -1);

  auto died = DiffRuleSets(clusters, rules, 2, clusters, none, 3,
                           DiffOptions{});
  ASSERT_TRUE(died.ok());
  EXPECT_EQ(died->died, 2u);
  EXPECT_EQ(died->born, 0u);
  ASSERT_EQ(died->records.size(), 2u);
  EXPECT_EQ(died->records[0].kind, DiffKind::kDied);
  EXPECT_EQ(died->records[0].old_index, 0);
  EXPECT_EQ(died->records[0].new_index, -1);
  EXPECT_EQ(died->old_generation, 2u);
  EXPECT_EQ(died->new_generation, 3u);

  auto both_empty =
      DiffRuleSets(clusters, none, 0, clusters, none, 1, DiffOptions{});
  ASSERT_TRUE(both_empty.ok());
  EXPECT_TRUE(both_empty->records.empty());
}

TEST(DiffTest, IdenticalGenerationsReportNoFalseChanges) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> rules = {MakeRule({0}, {3}, 1.0),
                                           MakeRule({1}, {4}, 2.0),
                                           MakeRule({2}, {3}, 3.0)};
  auto diff =
      DiffRuleSets(clusters, rules, 5, clusters, rules, 6, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->born, 0u);
  EXPECT_EQ(diff->died, 0u);
  EXPECT_EQ(diff->drifted, 0u);
  EXPECT_EQ(diff->unchanged, rules.size());
  for (const RuleDiffRecord& record : diff->records) {
    EXPECT_EQ(record.kind, DiffKind::kUnchanged);
    EXPECT_EQ(record.old_index, record.new_index);
    EXPECT_EQ(record.interval_shift, 0.0);
    EXPECT_EQ(record.degree_shift, 0.0);
  }
}

TEST(DiffTest, ReorderOnlyIsNotDrift) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> old_rules = {MakeRule({0}, {3}, 1.0),
                                               MakeRule({2}, {3}, 3.0)};
  // Same rules, opposite vector order: the signature + max-overlap match
  // must pair each with its true counterpart, not its positional one.
  const std::vector<DistanceRule> new_rules = {MakeRule({2}, {3}, 3.0),
                                               MakeRule({0}, {3}, 1.0)};
  auto diff = DiffRuleSets(clusters, old_rules, 1, clusters, new_rules, 2,
                           DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->born, 0u);
  EXPECT_EQ(diff->died, 0u);
  EXPECT_EQ(diff->drifted, 0u);
  EXPECT_EQ(diff->unchanged, 2u);
  ASSERT_EQ(diff->records.size(), 2u);
  EXPECT_EQ(diff->records[0].new_index, 0);
  EXPECT_EQ(diff->records[0].old_index, 1);
  EXPECT_EQ(diff->records[1].new_index, 1);
  EXPECT_EQ(diff->records[1].old_index, 0);
}

TEST(DiffTest, IntervalShiftPastToleranceIsDrift) {
  auto layout = MakeLayout(2);
  // Old: cluster on part 0 at [0,10]; new: same signature at [5,15] —
  // endpoints moved by half the width.
  std::vector<FoundCluster> old_found;
  old_found.push_back({0, 0, MakeAcf(layout, 0, {{0, 0}, {10, 10}})});
  old_found.push_back({1, 1, MakeAcf(layout, 1, {{0, 0}, {10, 10}})});
  const ClusterSet old_clusters(layout, std::move(old_found));
  std::vector<FoundCluster> new_found;
  new_found.push_back({0, 0, MakeAcf(layout, 0, {{5, 0}, {15, 10}})});
  new_found.push_back({1, 1, MakeAcf(layout, 1, {{5, 0}, {15, 10}})});
  const ClusterSet new_clusters(layout, std::move(new_found));

  const std::vector<DistanceRule> old_rules = {MakeRule({0}, {1}, 1.0)};
  const std::vector<DistanceRule> new_rules = {MakeRule({0}, {1}, 1.0)};
  DiffOptions options;
  options.interval_tolerance = 0.25;
  auto diff = DiffRuleSets(old_clusters, old_rules, 1, new_clusters,
                           new_rules, 2, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->drifted, 1u);
  EXPECT_EQ(diff->born, 0u);
  EXPECT_EQ(diff->died, 0u);
  ASSERT_EQ(diff->records.size(), 1u);
  EXPECT_EQ(diff->records[0].kind, DiffKind::kDrifted);
  EXPECT_NEAR(diff->records[0].interval_shift, 0.5, 1e-12);

  // The same movement inside a generous tolerance is "unchanged".
  options.interval_tolerance = 0.75;
  auto tolerant = DiffRuleSets(old_clusters, old_rules, 1, new_clusters,
                               new_rules, 2, options);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant->drifted, 0u);
  EXPECT_EQ(tolerant->unchanged, 1u);
}

TEST(DiffTest, DegreeShiftAloneIsDrift) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  const std::vector<DistanceRule> old_rules = {MakeRule({0}, {3}, 1.0)};
  const std::vector<DistanceRule> new_rules = {MakeRule({0}, {3}, 2.0)};
  auto diff = DiffRuleSets(clusters, old_rules, 1, clusters, new_rules, 2,
                           DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->drifted, 1u);
  ASSERT_EQ(diff->records.size(), 1u);
  EXPECT_NEAR(diff->records[0].degree_shift, 1.0, 1e-12);
  EXPECT_EQ(diff->records[0].interval_shift, 0.0);
}

TEST(DiffTest, FullyDisjointIntervalsNeverMatchEvenWithSameSignature) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  // Every paired dimension disjoint ([0,10] vs [50,60] on both sides):
  // zero mean overlap must yield born + died, not a drifted "match".
  const std::vector<DistanceRule> old_rules = {MakeRule({0}, {3}, 1.0)};
  const std::vector<DistanceRule> new_rules = {MakeRule({2}, {5}, 1.0)};
  auto diff = DiffRuleSets(clusters, old_rules, 1, clusters, new_rules, 2,
                           DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->born, 1u);
  EXPECT_EQ(diff->died, 1u);
  EXPECT_EQ(diff->drifted, 0u);
  EXPECT_EQ(diff->unchanged, 0u);
}

TEST(DiffTest, PartialOverlapMatchesAsExtremeDrift) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  // Antecedent interval moved wholesale ([0,10] -> [50,60]) while the
  // consequent stayed: the mean overlap is still positive, so the rules
  // match — and the shift classifies the pair as (far-past-tolerance)
  // drift rather than an unrelated birth + death.
  const std::vector<DistanceRule> old_rules = {MakeRule({0}, {3}, 1.0)};
  const std::vector<DistanceRule> new_rules = {MakeRule({2}, {3}, 1.0)};
  auto diff = DiffRuleSets(clusters, old_rules, 1, clusters, new_rules, 2,
                           DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->drifted, 1u);
  EXPECT_EQ(diff->born, 0u);
  EXPECT_EQ(diff->died, 0u);
  ASSERT_EQ(diff->records.size(), 1u);
  EXPECT_GE(diff->records[0].interval_shift, 1.0);
}

TEST(DiffTest, ValidatesTolerances) {
  auto layout = MakeLayout(2);
  const ClusterSet clusters = MakeOverlapClusters(layout);
  DiffOptions bad;
  bad.interval_tolerance = -0.1;
  EXPECT_TRUE(DiffRuleSets(clusters, {}, 1, clusters, {}, 2, bad)
                  .status()
                  .IsInvalidArgument());
}

// --- Interval-match primitives. ---

TEST(IntervalMatchTest, JaccardAndShiftBasics) {
  EXPECT_DOUBLE_EQ(IntervalJaccard({0, 10}, {0, 10}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalJaccard({0, 10}, {1, 11}), 9.0 / 11.0);
  EXPECT_DOUBLE_EQ(IntervalJaccard({0, 10}, {20, 30}), 0.0);
  // Degenerate point intervals.
  EXPECT_DOUBLE_EQ(IntervalJaccard({5, 5}, {5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalJaccard({5, 5}, {6, 6}), 0.0);
}

}  // namespace
}  // namespace dar::quality
