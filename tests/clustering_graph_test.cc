#include "core/clustering_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "core/session.h"

namespace dar {
namespace {

std::shared_ptr<const AcfLayout> ThreePartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "A"},
                   {1, MetricKind::kEuclidean, "B"},
                   {1, MetricKind::kEuclidean, "C"}};
  return layout;
}

// Builds a cluster on `part` from tuples given as (a, b, c) triples.
FoundCluster MakeCluster(std::shared_ptr<const AcfLayout> layout, size_t id,
                         size_t part,
                         const std::vector<std::array<double, 3>>& tuples) {
  FoundCluster c;
  c.id = id;
  c.part = part;
  c.acf = Acf(layout, part);
  for (const auto& t : tuples) {
    c.acf.AddRow({{t[0]}, {t[1]}, {t[2]}});
  }
  return c;
}

TEST(ClusteringGraphTest, CooccurringClustersGetEdge) {
  auto layout = ThreePartLayout();
  // Clusters from the same tuple population: A-cluster at a=10, B-cluster
  // at b=20 (both summarize tuples (10, 20, 99)).
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 20, 99}, {10, 20, 98}}));
  clusters.push_back(MakeCluster(layout, 1, 1, {{10, 20, 99}, {10, 20, 98}}));
  ClusterSet set(layout, std::move(clusters));

  ClusteringGraphOptions opts;
  opts.d0 = {1.0, 1.0, 1.0};
  ClusteringGraph graph(set, opts);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 0));
}

TEST(ClusteringGraphTest, NonCooccurringClustersNoEdge) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  // A-cluster over tuples whose b values are far from the B-cluster.
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 500, 0}, {10, 510, 0}}));
  clusters.push_back(MakeCluster(layout, 1, 1, {{300, 20, 0}, {310, 20, 0}}));
  ClusterSet set(layout, std::move(clusters));

  ClusteringGraphOptions opts;
  opts.d0 = {1.0, 1.0, 1.0};
  ClusteringGraph graph(set, opts);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_FALSE(graph.HasEdge(0, 1));
}

TEST(ClusteringGraphTest, SamePartClustersNeverConnect) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 0, 0}}));
  clusters.push_back(MakeCluster(layout, 1, 0, {{10, 0, 0}}));
  ClusterSet set(layout, std::move(clusters));
  ClusteringGraphOptions opts;
  opts.d0 = {100.0, 100.0, 100.0};
  ClusteringGraph graph(set, opts);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(ClusteringGraphTest, EdgeRequiresBothDirections) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  // A-cluster's b-image is near the B-cluster, but the B-cluster's a-image
  // is far from the A-cluster: no edge (both conditions required).
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 20, 0}, {10, 21, 0}}));
  clusters.push_back(MakeCluster(layout, 1, 1, {{900, 20, 0}, {901, 21, 0}}));
  ClusterSet set(layout, std::move(clusters));
  ClusteringGraphOptions opts;
  opts.d0 = {5.0, 5.0, 5.0};
  ClusteringGraph graph(set, opts);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(ClusteringGraphTest, PruningHeuristicPreservesResult) {
  // Random clusters; the §6.2 pruning must not change the edge set.
  auto layout = ThreePartLayout();
  Rng rng(71);
  std::vector<FoundCluster> with_prune_clusters, without;
  for (size_t id = 0; id < 20; ++id) {
    size_t part = id % 3;
    std::vector<std::array<double, 3>> tuples;
    double base_a = rng.Uniform(0, 50), base_b = rng.Uniform(0, 50),
           base_c = rng.Uniform(0, 50);
    double spread = rng.Uniform(0.1, 20);  // some images diffuse, some tight
    for (int t = 0; t < 8; ++t) {
      tuples.push_back({base_a + rng.Uniform(-spread, spread),
                        base_b + rng.Uniform(-spread, spread),
                        base_c + rng.Uniform(-spread, spread)});
    }
    with_prune_clusters.push_back(MakeCluster(layout, id, part, tuples));
    without.push_back(MakeCluster(layout, id, part, tuples));
  }
  ClusterSet set_a(layout, std::move(with_prune_clusters));
  ClusterSet set_b(layout, std::move(without));

  ClusteringGraphOptions opts;
  opts.d0 = {6.0, 6.0, 6.0};
  opts.prune_low_density_images = true;
  ClusteringGraph pruned(set_a, opts);
  opts.prune_low_density_images = false;
  ClusteringGraph full(set_b, opts);

  EXPECT_EQ(pruned.num_edges(), full.num_edges());
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(pruned.HasEdge(i, j), full.HasEdge(i, j));
    }
  }
  EXPECT_GT(pruned.comparisons_skipped(), 0);
  EXPECT_LT(pruned.comparisons_made(), full.comparisons_made());
}

// --- maximal cliques ---

// Brute-force maximal cliques for reference.
std::set<std::vector<size_t>> BruteMaximalCliques(
    size_t n, const std::function<bool(size_t, size_t)>& edge) {
  std::set<std::vector<size_t>> cliques;
  for (uint64_t mask = 1; mask < (1ull << n); ++mask) {
    std::vector<size_t> nodes;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) nodes.push_back(i);
    }
    bool is_clique = true;
    for (size_t i = 0; i < nodes.size() && is_clique; ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        if (!edge(nodes[i], nodes[j])) {
          is_clique = false;
          break;
        }
      }
    }
    if (!is_clique) continue;
    // Maximal?
    bool maximal = true;
    for (size_t v = 0; v < n && maximal; ++v) {
      if (mask & (1ull << v)) continue;
      bool extends = true;
      for (size_t u : nodes) {
        if (!edge(u, v)) {
          extends = false;
          break;
        }
      }
      if (extends) maximal = false;
    }
    if (maximal) cliques.insert(nodes);
  }
  return cliques;
}

// Builds a ClusterSet whose clustering graph realizes a given random graph:
// n parts, one cluster per part; an edge (i, j) is realized by making the
// mutual images near, a non-edge by making them far.
TEST(CliqueTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(72);
  for (int trial = 0; trial < 12; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 9));
    std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        adj[i][j] = adj[j][i] = rng.Bernoulli(0.45);
      }
    }
    // Build one cluster per part in an n-part layout; encode adjacency by
    // constructing, for each cluster pair, images that are near (0) or far.
    auto layout = std::make_shared<AcfLayout>();
    for (size_t p = 0; p < n; ++p) {
      layout->parts.push_back({1, MetricKind::kEuclidean,
                               "P" + std::to_string(p)});
    }
    std::vector<FoundCluster> clusters;
    for (size_t i = 0; i < n; ++i) {
      FoundCluster c;
      c.id = i;
      c.part = i;
      c.acf = Acf(layout, i);
      // Tuple for cluster i: own coordinate 0; coordinate on part j is 0 if
      // edge(i, j) else 1000 * (i + 1) (far and distinct).
      PartedRow row(n);
      for (size_t j = 0; j < n; ++j) {
        double v = (i == j || adj[i][j]) ? 0.0 : 1000.0 * (i + 1);
        row[j] = {v};
      }
      c.acf.AddRow(row);
      clusters.push_back(std::move(c));
    }
    ClusterSet set(layout, std::move(clusters));
    ClusteringGraphOptions opts;
    opts.d0.assign(n, 1.0);
    ClusteringGraph graph(set, opts);
    // Check the realized graph matches the random adjacency.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        ASSERT_EQ(graph.HasEdge(i, j), static_cast<bool>(adj[i][j]))
            << "trial " << trial << " edge " << i << "," << j;
      }
    }
    auto got_list = graph.MaximalCliques();
    std::set<std::vector<size_t>> got(got_list.begin(), got_list.end());
    auto expect = BruteMaximalCliques(
        n, [&](size_t a, size_t b) { return bool(adj[a][b]); });
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(CliqueTest, IsolatedNodesAreTrivialCliques) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, {{1, 999, 0}}));
  clusters.push_back(MakeCluster(layout, 1, 1, {{999, 1, 0}}));
  ClusterSet set(layout, std::move(clusters));
  ClusteringGraphOptions opts;
  opts.d0 = {1.0, 1.0, 1.0};
  ClusteringGraph graph(set, opts);
  auto cliques = graph.MaximalCliques();
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<size_t>{0}));
  EXPECT_EQ(cliques[1], (std::vector<size_t>{1}));
}

TEST(CliqueTest, CapTruncatesLoudly) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  for (size_t p = 0; p < 3; ++p) {
    clusters.push_back(MakeCluster(layout, p, p, {{5, 6, 7}, {5, 6, 7}}));
  }
  ClusterSet set(layout, std::move(clusters));
  ClusteringGraphOptions opts;
  opts.d0 = {1.0, 1.0, 1.0};
  ClusteringGraph graph(set, opts);
  bool truncated = false;
  auto capped = graph.MaximalCliques(/*max_cliques=*/0, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(capped.size(), 1u);
  // Build a graph with multiple maximal cliques and cap below the count.
  std::vector<FoundCluster> clusters2;
  clusters2.push_back(MakeCluster(layout, 0, 0, {{1, 999, 0}}));
  clusters2.push_back(MakeCluster(layout, 1, 1, {{999, 1, 0}}));
  ClusterSet set2(layout, std::move(clusters2));
  ClusteringGraph graph2(set2, opts);  // two isolated nodes => 2 cliques
  truncated = false;
  auto limited = graph2.MaximalCliques(/*max_cliques=*/1, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(limited.size(), 1u);
}

TEST(CliqueTest, CompleteGraphSingleClique) {
  auto layout = ThreePartLayout();
  std::vector<FoundCluster> clusters;
  // Three clusters from one tuple population: pairwise co-occurring.
  for (size_t p = 0; p < 3; ++p) {
    clusters.push_back(MakeCluster(layout, p, p, {{5, 6, 7}, {5, 6, 7}}));
  }
  ClusterSet set(layout, std::move(clusters));
  ClusteringGraphOptions opts;
  opts.d0 = {1.0, 1.0, 1.0};
  ClusteringGraph graph(set, opts);
  EXPECT_EQ(graph.num_edges(), 3u);
  auto cliques = graph.MaximalCliques();
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace dar
