// Violation fixture: reads and writes a DAR_GUARDED_BY field without
// holding its mutex. Clang must reject this with
// -Werror=thread-safety-analysis ("requires holding mutex 'mu_'").

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BAD: mu_ not held.
  }

  [[nodiscard]] int Get() const {
    return value_;  // BAD: mu_ not held.
  }

 private:
  mutable dar::Mutex mu_;
  int value_ DAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get();
}
