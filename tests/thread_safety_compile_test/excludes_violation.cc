// Violation fixture: calls a DAR_EXCLUDES(mu_) function while holding
// mu_ — the shape of a self-deadlock (e.g. a reap/maintenance routine
// that takes the lock internally being invoked from under it). Clang
// must reject the call site ("cannot call function ... while mutex
// 'mu_' is held").

#include "common/mutex.h"

namespace {

class Reaper {
 public:
  void Reap() DAR_EXCLUDES(mu_) {
    const dar::MutexLock lock(mu_);
    pending_ = 0;
  }

  void FinishAndReap() {
    const dar::MutexLock lock(mu_);
    ++pending_;
    Reap();  // BAD: Reap() re-acquires mu_ -> deadlock.
  }

 private:
  dar::Mutex mu_;
  int pending_ DAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Reaper reaper;
  reaper.FinishAndReap();
  return 0;
}
