// Violation fixture: calls a DAR_REQUIRES(mu_) helper without holding
// mu_. Clang must reject the call site ("calling function ... requires
// holding mutex 'mu_' exclusively").

#include "common/mutex.h"

namespace {

class Ledger {
 public:
  [[nodiscard]] int UnsafeTotal() const {
    return TotalLocked();  // BAD: caller does not hold mu_.
  }

 private:
  [[nodiscard]] int TotalLocked() const DAR_REQUIRES(mu_) { return total_; }

  mutable dar::Mutex mu_;
  int total_ DAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  const Ledger ledger;
  return ledger.UnsafeTotal();
}
