// Violation fixture: a path that returns while still holding the mutex.
// Clang must reject this ("mutex 'mu_' is still held at the end of
// function").

#include "common/mutex.h"

namespace {

class Gate {
 public:
  void OpenAndLeak(bool early) {
    mu_.Lock();
    open_ = true;
    if (early) return;  // BAD: leaves mu_ held.
    mu_.Unlock();
  }

 private:
  dar::Mutex mu_;
  bool open_ DAR_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Gate gate;
  gate.OpenAndLeak(true);
  return 0;
}
