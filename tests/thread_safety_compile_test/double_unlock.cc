// Violation fixture: unlocks a mutex that is not held (second Unlock).
// Clang must reject this ("releasing mutex 'mu_' that was not held").

#include "common/mutex.h"

namespace {

class Toggle {
 public:
  void Flip() {
    mu_.Lock();
    on_ = !on_;
    mu_.Unlock();
    mu_.Unlock();  // BAD: mu_ already released.
  }

 private:
  dar::Mutex mu_;
  bool on_ DAR_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Toggle toggle;
  toggle.Flip();
  return 0;
}
