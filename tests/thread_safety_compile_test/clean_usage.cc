// Control fixture: correct use of every piece of the annotated locking
// layer. Must compile clean under -Werror=thread-safety — if it does not,
// the harness would "pass" its rejection tests for the wrong reason.

#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    const dar::MutexLock lock(mu_);
    balance_ = BalanceLocked() + amount;
    cv_.NotifyAll();
  }

  void WaitUntilFunded() {
    const dar::MutexLock lock(mu_);
    while (balance_ == 0) cv_.Wait(mu_);
  }

  [[nodiscard]] int ReadStat() const {
    const dar::ReaderLock lock(stat_mu_);
    return stat_;
  }

  void WriteStat(int value) {
    const dar::WriterLock lock(stat_mu_);
    stat_ = value;
  }

  void ManualLockPair() {
    mu_.Lock();
    balance_ += 1;
    mu_.Unlock();
  }

 private:
  [[nodiscard]] int BalanceLocked() const DAR_REQUIRES(mu_) {
    return balance_;
  }

  mutable dar::Mutex mu_;
  dar::CondVar cv_;
  int balance_ DAR_GUARDED_BY(mu_) = 0;

  mutable dar::SharedMutex stat_mu_;
  int stat_ DAR_GUARDED_BY(stat_mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.WaitUntilFunded();
  account.WriteStat(2);
  account.ManualLockPair();
  return account.ReadStat() == 2 ? 0 : 1;
}
