// Unit tests for the telemetry subsystem: metric primitives, the registry
// and its snapshots, the deterministic JSON exporter, and the RAII trace
// span. The end-to-end determinism contract (byte-identical exports across
// thread counts) lives in session_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/context.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dar {
namespace telemetry {
namespace {

TEST(CounterTest, IncrementAccumulates) {
  Counter c(Unit::kCount);
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(c.unit(), Unit::kCount);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c(Unit::kCount);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriterWins) {
  Gauge g(Unit::kBytes);
  g.Set(12.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_EQ(g.unit(), Unit::kBytes);
}

TEST(HistogramTest, BucketsByInclusiveUpperBound) {
  Histogram h({1.0, 10.0, 100.0}, Unit::kCount);
  h.Record(0.5);
  h.Record(1.0);  // inclusive: lands in the first bucket
  h.Record(5.0);
  h.Record(1000.0);  // overflow bucket
  std::vector<int64_t> expect = {2, 1, 0, 1};
  EXPECT_EQ(h.bucket_counts(), expect);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(HistogramTest, LatencyBoundsAreAscending) {
  std::vector<double> bounds = Histogram::LatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GT(bounds.front(), 0.0);
}

TEST(RegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("y"));
  // First registration wins the unit.
  Counter* c = registry.GetCounter("x", Unit::kBytes);
  EXPECT_EQ(c, a);
  EXPECT_EQ(c->unit(), Unit::kCount);
}

TEST(RegistryTest, SnapshotCopiesValuesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("g", Unit::kSeconds)->Set(0.25);
  registry.GetHistogram("h", {1.0})->Record(0.5);
  Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.begin()->first, "a.count");
  EXPECT_EQ(snap.CounterOr("b.count"), 2);
  EXPECT_EQ(snap.CounterOr("missing", -7), -7);
  EXPECT_DOUBLE_EQ(snap.GaugeOr("g"), 0.25);
  EXPECT_DOUBLE_EQ(snap.GaugeOr("missing", 3.5), 3.5);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  const Snapshot::HistogramValue& h = snap.histograms.at("h");
  EXPECT_EQ(h.counts, (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(h.count, 1);
  // The snapshot is a copy: later recording does not affect it.
  registry.GetCounter("a.count")->Increment(10);
  EXPECT_EQ(snap.CounterOr("a.count"), 1);
}

TEST(RegistryTest, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment(5);
  registry.Reset();
  Snapshot snap = registry.TakeSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_EQ(registry.GetCounter("x")->value(), 0);
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, FormatDoubleRoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(JsonWriter::FormatDouble(0.1), "0.1");
  EXPECT_EQ(JsonWriter::FormatDouble(2.0), "2");
  EXPECT_EQ(JsonWriter::FormatDouble(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::FormatDouble(INFINITY), "null");
}

TEST(JsonWriterTest, BuildsNestedDocuments) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.Key("b");
  w.String("x\"y");
  w.Key("c");
  w.Bool(true);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":[1,2],"b":"x\"y","c":true})");
}

TEST(JsonExporterTest, SortedKeysAndSchema) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(3);
  registry.GetCounter("alpha")->Increment(1);
  registry.GetGauge("mem", Unit::kBytes)->Set(64.0);
  registry.GetHistogram("lat", {0.5, 1.0})->Record(0.25);
  std::string json = JsonExporter().Export(registry.TakeSnapshot());
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[0.5,1]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[1,0,0]"), std::string::npos);
  // Identical snapshots serialize to identical bytes.
  EXPECT_EQ(json, JsonExporter().Export(registry.TakeSnapshot()));
}

TEST(JsonExporterTest, DeterministicViewDropsTimeValuedMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Increment();
  registry.GetGauge("elapsed", Unit::kSeconds)->Set(0.125);
  registry.GetHistogram("lat", Histogram::LatencyBounds())->Record(0.01);
  Snapshot snap = registry.TakeSnapshot();
  std::string full = JsonExporter().Export(snap);
  EXPECT_NE(full.find("\"elapsed\""), std::string::npos);
  EXPECT_NE(full.find("\"lat\""), std::string::npos);
  JsonExporterOptions options;
  options.include_timings = false;
  std::string deterministic = JsonExporter(options).Export(snap);
  EXPECT_EQ(deterministic.find("\"elapsed\""), std::string::npos);
  EXPECT_EQ(deterministic.find("\"lat\""), std::string::npos);
  EXPECT_NE(deterministic.find("\"events\""), std::string::npos);
}

TEST(TraceSpanTest, RecordsIntoSinksOnDestruction) {
  Histogram h(Histogram::LatencyBounds(), Unit::kSeconds);
  Gauge g(Unit::kSeconds);
  {
    TraceSpan span(&h, &g);
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(g.value(), 0.0);
  { TraceSpan no_sinks(nullptr); }  // must be a safe no-op
}

TEST(TelemetryContextTest, DisabledContextReturnsNull) {
  TelemetryContext disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.GetCounter("x"), nullptr);
  EXPECT_EQ(disabled.GetGauge("x"), nullptr);
  EXPECT_EQ(disabled.GetHistogram("x", {1.0}), nullptr);

  MetricsRegistry registry;
  TelemetryContext enabled(&registry);
  EXPECT_TRUE(enabled.enabled());
  ASSERT_NE(enabled.GetCounter("x"), nullptr);
  EXPECT_EQ(enabled.GetCounter("x"), registry.GetCounter("x"));
}

}  // namespace
}  // namespace telemetry
}  // namespace dar
