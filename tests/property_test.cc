// Parameterized property sweeps: the key invariants of the library checked
// across seeds and structural parameters (gtest TEST_P suites).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "apriori/apriori.h"
#include "birch/acf_tree.h"
#include "birch/metrics.h"
#include "common/random.h"
#include "core/session.h"
#include "datagen/planted.h"
#include "persist/codec.h"
#include "persist/wire.h"
#include "test_util.h"

namespace dar {
namespace {

using testutil::BruteD2Rms;
using testutil::BruteDiameterRms;
using testutil::Points;
using testutil::RandomPoints;

// ---------------------------------------------------------------------------
// CF algebra invariants across seeds and dimensions.

class CfPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(CfPropertyTest, SummaryMatchesBruteForce) {
  auto [seed, dim] = GetParam();
  Rng rng(seed);
  Points a = RandomPoints(rng, size_t(rng.UniformInt(2, 30)), dim);
  Points b = RandomPoints(rng, size_t(rng.UniformInt(2, 30)), dim);
  CfVector cfa(dim, MetricKind::kEuclidean), cfb(dim, MetricKind::kEuclidean);
  for (const auto& p : a) cfa.AddPoint(p);
  for (const auto& p : b) cfb.AddPoint(p);
  EXPECT_NEAR(cfa.Diameter(), BruteDiameterRms(a), 1e-8);
  EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD2AvgInter),
              BruteD2Rms(a, b), 1e-8);
  // Additivity.
  CfVector merged = cfa;
  merged.Merge(cfb);
  Points all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_NEAR(merged.Diameter(), BruteDiameterRms(all), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CfPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                       ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------------
// ACF-tree invariants across structural parameters and seeds.

struct TreeParam {
  int branching;
  int leaf_capacity;
  uint64_t seed;
};

class AcfTreePropertyTest : public ::testing::TestWithParam<TreeParam> {};

TEST_P(AcfTreePropertyTest, MassAndMomentsConserved) {
  TreeParam param = GetParam();
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  AcfTreeOptions opts;
  opts.branching_factor = param.branching;
  opts.leaf_capacity = param.leaf_capacity;
  opts.memory_budget_bytes = 48u << 10;  // forces rebuilds
  AcfTree tree(layout, 0, opts);
  Rng rng(param.seed);
  double sum_x = 0, sum_y = 0;
  const int n = 2500;
  for (int i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 1e4), y = rng.Gaussian(0, 3);
    sum_x += x;
    sum_y += y;
    ASSERT_TRUE(tree.InsertPoint({{x}, {y}}).ok());
  }
  ASSERT_TRUE(tree.FinishScan().ok());
  EXPECT_EQ(tree.TotalMass(), n);
  double ls_x = 0, ls_y = 0;
  for (const auto& c : tree.ExtractClusters()) {
    ls_x += c.image(0).ls()[0];
    ls_y += c.image(1).ls()[0];
  }
  for (const auto& c : tree.outliers()) {
    ls_x += c.image(0).ls()[0];
    ls_y += c.image(1).ls()[0];
  }
  EXPECT_NEAR(ls_x / sum_x, 1.0, 1e-9);
  EXPECT_NEAR(ls_y, sum_y, 1e-6 * n);
  // Every cluster respects the final threshold (up to the RMS form).
  for (const auto& c : tree.ExtractClusters()) {
    if (c.n() >= 2) {
      EXPECT_LE(c.Diameter(), tree.threshold() * (1 + 1e-9) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcfTreePropertyTest,
    ::testing::Values(TreeParam{4, 2, 1}, TreeParam{4, 8, 2},
                      TreeParam{16, 8, 3}, TreeParam{16, 2, 4},
                      TreeParam{32, 16, 5}, TreeParam{2, 1, 6}));

// ---------------------------------------------------------------------------
// Persistence round-trip across the same structural sweep: encode -> decode
// -> re-encode reproduces the exact bytes (hence the exact ACF sums, node
// structure and counters), for trees mid-scan with live outlier buffers as
// well as finished ones.

class TreeRoundTripPropertyTest : public ::testing::TestWithParam<TreeParam> {
};

TEST_P(TreeRoundTripPropertyTest, EncodeDecodeEncodeIsIdentity) {
  TreeParam param = GetParam();
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  AcfTreeOptions opts;
  opts.branching_factor = param.branching;
  opts.leaf_capacity = param.leaf_capacity;
  opts.memory_budget_bytes = 48u << 10;  // forces rebuilds
  opts.outlier_entry_min_n = 3;          // exercises the outlier buffers
  AcfTree tree(layout, 0, opts);
  Rng rng(param.seed);
  for (int i = 0; i < 2500; ++i) {
    ASSERT_TRUE(
        tree.InsertPoint({{rng.Uniform(0, 1e4)}, {rng.Gaussian(0, 3)}}).ok());
  }
  // Deliberately no FinishScan: a checkpointed tree is mid-stream, with
  // paged-out outliers still buffered.

  persist::WireWriter w;
  persist::EncodeTree(tree, w);
  persist::WireReader r(w.bytes());
  auto decoded = persist::DecodeTree(r, layout, /*expect_part=*/0);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(r.ExpectEnd("tree blob").ok());
  EXPECT_TRUE((*decoded)->ValidateInvariants().ok());

  // Bit-identical re-encoding: nothing was lost or perturbed.
  persist::WireWriter w2;
  persist::EncodeTree(**decoded, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());

  // Derived views agree too (belt and braces on top of byte equality).
  const AcfTreeStats a = tree.Stats(), b = (*decoded)->Stats();
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_leaf_entries, b.num_leaf_entries);
  EXPECT_EQ(a.num_outliers, b.num_outliers);
  EXPECT_EQ(a.rebuild_count, b.rebuild_count);
  EXPECT_EQ(a.threshold, b.threshold);  // bitwise
  EXPECT_EQ(a.points_inserted, b.points_inserted);
  EXPECT_EQ(a.split_count, b.split_count);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(tree.TotalMass(), (*decoded)->TotalMass());

  // ExtractClusters order — the source of cluster ids, hence rule
  // identities — survives exactly.
  const auto orig = tree.ExtractClusters();
  const auto back = (*decoded)->ExtractClusters();
  ASSERT_EQ(orig.size(), back.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(orig[i].n(), back[i].n());
    for (size_t p = 0; p < layout->parts.size(); ++p) {
      EXPECT_EQ(orig[i].image(p).ls()[0], back[i].image(p).ls()[0]);  // bitwise
      EXPECT_EQ(orig[i].image(p).ss()[0], back[i].image(p).ss()[0]);
    }
  }

  // After finishing both trees the same way, they still agree bit-exactly.
  persist::WireReader r2(w.bytes());
  auto decoded2 = persist::DecodeTree(r2, layout, 0);
  ASSERT_TRUE(decoded2.ok());
  ASSERT_TRUE(tree.FinishScan().ok());
  ASSERT_TRUE((*decoded2)->FinishScan().ok());
  persist::WireWriter wf1, wf2;
  persist::EncodeTree(tree, wf1);
  persist::EncodeTree(**decoded2, wf2);
  EXPECT_EQ(wf1.bytes(), wf2.bytes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeRoundTripPropertyTest,
    ::testing::Values(TreeParam{4, 2, 11}, TreeParam{4, 8, 12},
                      TreeParam{16, 8, 13}, TreeParam{16, 2, 14},
                      TreeParam{32, 16, 15}, TreeParam{2, 1, 16}));

// ---------------------------------------------------------------------------
// Apriori equals brute force across seeds.

class AprioriPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<Itemset> txns;
  size_t n = static_cast<size_t>(rng.UniformInt(10, 60));
  for (size_t i = 0; i < n; ++i) {
    Itemset t;
    for (Item it = 0; it < 7; ++it) {
      if (rng.Bernoulli(0.4)) t.push_back(it);
    }
    txns.push_back(t);
  }
  int64_t min_count = rng.UniformInt(2, 8);
  AprioriOptions opts;
  opts.min_support_count = min_count;
  auto mined = MineFrequentItemsets(txns, opts);
  ASSERT_TRUE(mined.ok());
  std::map<Itemset, int64_t> got;
  for (const auto& f : *mined) got[f.items] = f.count;
  // Brute force.
  std::map<Itemset, int64_t> expect;
  for (uint64_t mask = 1; mask < (1ull << 7); ++mask) {
    Itemset s;
    for (Item it = 0; it < 7; ++it) {
      if (mask & (1ull << it)) s.push_back(it);
    }
    int64_t count = 0;
    for (const auto& t : txns) {
      if (IsSubsetOf(s, t)) ++count;
    }
    if (count >= min_count) expect[s] = count;
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriPropertyTest,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

// ---------------------------------------------------------------------------
// End-to-end planted-structure recovery across workload shapes.

struct WorkloadParam {
  size_t attrs;
  size_t clusters;
  double outliers;
  uint64_t seed;
};

class RecoveryPropertyTest : public ::testing::TestWithParam<WorkloadParam> {
};

TEST_P(RecoveryPropertyTest, FindsAllPlantedClusters) {
  WorkloadParam w = GetParam();
  PlantedDataSpec spec = WbcdLikeSpec(w.attrs, w.clusters, w.outliers,
                                      w.seed);
  auto data = GeneratePlanted(spec, 1500 * w.clusters, w.seed + 1);
  ASSERT_TRUE(data.ok());
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.4 / static_cast<double>(w.clusters);
  config.initial_diameters.assign(w.attrs, 0.3 * 1000.0 / w.clusters);
  config.refine_clusters = true;
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto phase1 = session->RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  for (size_t p = 0; p < w.attrs; ++p) {
    EXPECT_EQ(phase1->clusters.ClustersOnPart(p).size(), w.clusters)
        << "part " << p;
  }
  // Every planted center matched by some frequent cluster.
  for (size_t p = 0; p < w.attrs; ++p) {
    for (const auto& planted : spec.parts[p].clusters) {
      bool matched = false;
      for (size_t id : phase1->clusters.ClustersOnPart(p)) {
        if (std::fabs(phase1->clusters.cluster(id).acf.Centroid()[0] -
                      planted.center[0]) < 0.2 * 1000.0 / w.clusters) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "part " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecoveryPropertyTest,
    ::testing::Values(WorkloadParam{2, 2, 0.0, 301},
                      WorkloadParam{3, 3, 0.05, 302},
                      WorkloadParam{4, 5, 0.1, 303},
                      WorkloadParam{2, 8, 0.1, 304},
                      WorkloadParam{6, 3, 0.2, 305}));

// ---------------------------------------------------------------------------
// Theorem 5.2 equivalence across seeds (degree == 1 - confidence).

class Theorem52PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem52PropertyTest, DegreeIsOneMinusConfidence) {
  Rng rng(GetParam());
  size_t n = static_cast<size_t>(rng.UniformInt(10, 200));
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<double>(rng.UniformInt(0, 4));
    b[i] = static_cast<double>(rng.UniformInt(0, 4));
  }
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kDiscrete, "A"},
                   {1, MetricKind::kDiscrete, "B"}};
  std::map<double, Acf> on_a, on_b;
  for (size_t i = 0; i < n; ++i) {
    PartedRow row = {{a[i]}, {b[i]}};
    on_a.try_emplace(a[i], Acf(layout, 0)).first->second.AddRow(row);
    on_b.try_emplace(b[i], Acf(layout, 1)).first->second.AddRow(row);
  }
  for (const auto& [va, ca] : on_a) {
    for (const auto& [vb, cb] : on_b) {
      size_t count_a = 0, count_ab = 0;
      for (size_t i = 0; i < n; ++i) {
        if (a[i] == va) {
          ++count_a;
          if (b[i] == vb) ++count_ab;
        }
      }
      double degree = ClusterDistance(cb.image(1), ca.image(1),
                                      ClusterMetric::kD2AvgInter);
      EXPECT_NEAR(degree, 1.0 - double(count_ab) / count_a, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem52PropertyTest,
                         ::testing::Range(uint64_t{500}, uint64_t{510}));

}  // namespace
}  // namespace dar
