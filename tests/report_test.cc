#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "core/session.h"
#include "datagen/planted.h"

namespace dar {
namespace {

DarMiningResult MineSmall(const PlantedDataset& data) {
  DarConfig config;
  config.memory_budget_bytes = 8u << 20;
  config.frequency_fraction = 0.05;
  config.initial_diameters = {80.0, 80.0};
  config.degree_threshold = 150.0;
  config.count_rule_support = true;
  auto session = Session::Builder().WithConfig(config).Build();
  EXPECT_TRUE(session.ok());
  auto result = session->Mine(data.relation, data.partition);
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie().result;
}

TEST(ReportTest, JsonContainsClustersAndRules) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 61);
  auto data = GeneratePlanted(spec, 1000, 62);
  ASSERT_TRUE(data.ok());
  DarMiningResult result = MineSmall(*data);
  ASSERT_GT(result.phase1.clusters.size(), 0u);
  ASSERT_GT(result.phase2.rules.size(), 0u);

  std::string json =
      MiningResultToJson(result, data->relation.schema(), data->partition);
  EXPECT_NE(json.find("\"clusters\""), std::string::npos);
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
  EXPECT_NE(json.find("\"degree\""), std::string::npos);
  EXPECT_NE(json.find("\"support_count\""), std::string::npos);
  EXPECT_NE(json.find("\"box\""), std::string::npos);
  EXPECT_NE(json.find("attr0"), std::string::npos);

  // Structural sanity: balanced braces and brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportTest, WriteReportToStream) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 63);
  auto data = GeneratePlanted(spec, 800, 64);
  ASSERT_TRUE(data.ok());
  DarMiningResult result = MineSmall(*data);
  std::ostringstream out;
  ASSERT_TRUE(WriteMiningReport(result, data->relation.schema(),
                                data->partition, out)
                  .ok());
  EXPECT_FALSE(out.str().empty());
}

TEST(ReportTest, SummaryListsRulesAndCaps) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.0, 65);
  auto data = GeneratePlanted(spec, 2000, 66);
  ASSERT_TRUE(data.ok());
  DarMiningResult result = MineSmall(*data);
  std::string summary = MiningResultSummary(
      result, data->relation.schema(), data->partition, /*max_rules=*/2);
  EXPECT_NE(summary.find("Phase I:"), std::string::npos);
  EXPECT_NE(summary.find("Phase II:"), std::string::npos);
  if (result.phase2.rules.size() > 2) {
    EXPECT_NE(summary.find("more"), std::string::npos);
  }
}

TEST(ReportTest, EscapesSpecialCharactersInLabels) {
  // A schema with a quote in an attribute name must not break the JSON.
  Schema s = *Schema::Make({{"a\"b", AttributeKind::kInterval},
                            {"c", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(67);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        rel.AppendRow({rng.Gaussian(10, 1), rng.Gaussian(20, 1)}).ok());
  }
  AttributePartition part = AttributePartition::SingletonPartition(s);
  DarConfig config;
  config.frequency_fraction = 0.5;
  config.initial_diameters = {5.0, 5.0};
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto result = session->Mine(rel, part);
  ASSERT_TRUE(result.ok());
  std::string json = MiningResultToJson(result->result, s, part);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace dar
