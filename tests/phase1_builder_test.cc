#include "core/phase1_builder.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/session.h"
#include "datagen/planted.h"

namespace dar {
namespace {

DarConfig TestConfig() {
  DarConfig config;
  config.memory_budget_bytes = 8u << 20;
  config.frequency_fraction = 0.05;
  config.initial_diameters = {80.0, 80.0};
  return config;
}

TEST(Phase1BuilderTest, ValidatesConfig) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval}});
  AttributePartition part = AttributePartition::SingletonPartition(s);
  DarConfig bad = TestConfig();
  bad.frequency_fraction = 0;
  EXPECT_TRUE(Phase1Builder::Make(bad, s, part).status().IsInvalidArgument());
}

TEST(Phase1BuilderTest, RejectsWrongRowWidth) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval},
                            {"b", AttributeKind::kInterval}});
  AttributePartition part = AttributePartition::SingletonPartition(s);
  auto builder = Phase1Builder::Make(TestConfig(), s, part);
  ASSERT_TRUE(builder.ok());
  std::vector<double> short_row = {1.0};
  EXPECT_TRUE(builder->AddRow(short_row).IsInvalidArgument());
}

TEST(Phase1BuilderTest, FinishWithoutRowsFails) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval}});
  AttributePartition part = AttributePartition::SingletonPartition(s);
  auto builder = Phase1Builder::Make(TestConfig(), s, part);
  ASSERT_TRUE(builder.ok());
  EXPECT_TRUE(
      std::move(*builder).Finish().status().IsInvalidArgument());
}

TEST(Phase1BuilderTest, StreamingEqualsBatch) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 3, 0.05, 41);
  auto data = GeneratePlanted(spec, 2000, 42);
  ASSERT_TRUE(data.ok());
  DarConfig config = TestConfig();

  // Batch via a serial session.
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto batch = session->RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(batch.ok());

  // Streaming via the builder, row by row.
  auto builder =
      Phase1Builder::Make(config, data->relation.schema(), data->partition);
  ASSERT_TRUE(builder.ok());
  for (size_t r = 0; r < data->relation.num_rows(); ++r) {
    ASSERT_TRUE(builder->AddRow(data->relation.Row(r)).ok());
  }
  EXPECT_EQ(builder->rows_added(), 2000);
  auto streamed = std::move(*builder).Finish();
  ASSERT_TRUE(streamed.ok());

  // Identical input order and configuration => identical clusters.
  ASSERT_EQ(streamed->clusters.size(), batch->clusters.size());
  for (size_t i = 0; i < streamed->clusters.size(); ++i) {
    const FoundCluster& a = streamed->clusters.cluster(i);
    const FoundCluster& b = batch->clusters.cluster(i);
    EXPECT_EQ(a.part, b.part);
    EXPECT_EQ(a.acf.n(), b.acf.n());
    EXPECT_NEAR(a.acf.Centroid()[0], b.acf.Centroid()[0], 1e-9);
  }
  EXPECT_EQ(streamed->frequency_threshold, batch->frequency_threshold);
}

TEST(Phase1BuilderTest, RefinementReducesFragmentation) {
  // A workload prone to fragmentation: tight threshold relative to spread.
  PlantedDataSpec spec = WbcdLikeSpec(2, 4, 0.0, 43);
  auto data = GeneratePlanted(spec, 3000, 44);
  ASSERT_TRUE(data.ok());
  auto count_raw = [&](bool refine) {
    DarConfig config = TestConfig();
    config.initial_diameters = {25.0, 25.0};  // sigma ~10 => fragments
    config.refine_clusters = refine;
    auto session = Session::Builder().WithConfig(config).Build();
    EXPECT_TRUE(session.ok());
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    EXPECT_TRUE(phase1.ok());
    size_t raw = 0;
    for (size_t c : phase1->raw_cluster_counts) raw += c;
    return raw;
  };
  size_t without = count_raw(false);
  size_t with = count_raw(true);
  EXPECT_LE(with, without);
  EXPECT_LE(with, 2u * 4u + 2u);  // close to the 4 planted clusters per part
}

TEST(Phase1BuilderTest, StreamingMassAccounting) {
  Schema s = *Schema::Make({{"x", AttributeKind::kInterval}});
  AttributePartition part = AttributePartition::SingletonPartition(s);
  DarConfig config;
  config.memory_budget_bytes = 1u << 20;
  config.frequency_fraction = 0.01;
  auto builder = Phase1Builder::Make(config, s, part);
  ASSERT_TRUE(builder.ok());
  Rng rng(45);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> row = {rng.Uniform(0, 1000)};
    ASSERT_TRUE(builder->AddRow(row).ok());
  }
  auto phase1 = std::move(*builder).Finish();
  ASSERT_TRUE(phase1.ok());
  ASSERT_EQ(phase1->tree_stats.size(), 1u);
  EXPECT_EQ(phase1->tree_stats[0].points_inserted, 5000);
}

}  // namespace
}  // namespace dar
