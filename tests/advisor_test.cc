#include "core/advisor.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/session.h"
#include "datagen/planted.h"

namespace dar {
namespace {

TEST(AdvisorTest, ValidatesInput) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval}});
  Relation rel(s);
  AttributePartition part = AttributePartition::SingletonPartition(s);
  EXPECT_TRUE(SuggestThresholds(rel, part).status().IsInvalidArgument());
  ASSERT_TRUE(rel.AppendRow({1.0}).ok());
  ASSERT_TRUE(rel.AppendRow({2.0}).ok());
  AdvisorOptions opts;
  opts.sample_size = 1;
  EXPECT_TRUE(
      SuggestThresholds(rel, part, opts).status().IsInvalidArgument());
}

TEST(AdvisorTest, DeterministicForSeed) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 4, 0.1, 51);
  auto data = GeneratePlanted(spec, 2000, 52);
  ASSERT_TRUE(data.ok());
  auto a = SuggestThresholds(data->relation, data->partition);
  auto b = SuggestThresholds(data->relation, data->partition);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->initial_diameters, b->initial_diameters);
  EXPECT_EQ(a->density_thresholds, b->density_thresholds);
  EXPECT_DOUBLE_EQ(a->degree_threshold, b->degree_threshold);
}

TEST(AdvisorTest, DiameterBetweenNoiseAndClusterGap) {
  // Planted clusters at spacing ~250, sigma ~10: the advised Phase-I
  // diameter must exceed the within-cluster scale but stay below the gap.
  PlantedDataSpec spec = WbcdLikeSpec(2, 4, 0.0, 53);
  auto data = GeneratePlanted(spec, 3000, 54);
  ASSERT_TRUE(data.ok());
  auto advice = SuggestThresholds(data->relation, data->partition);
  ASSERT_TRUE(advice.ok());
  double sigma = spec.parts[0].clusters[0].stddev;
  double gap = 1000.0 / 4;
  for (double d : advice->initial_diameters) {
    EXPECT_GT(d, 0.1 * sigma);
    EXPECT_LT(d, 0.5 * gap);
  }
}

TEST(AdvisorTest, DiscretePartsGetTheoremThresholds) {
  Schema s = *Schema::Make({{"job", AttributeKind::kNominal},
                            {"salary", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(55);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        rel.AppendRow({double(i % 3), rng.Uniform(0, 1000)}).ok());
  }
  AttributePartition part = AttributePartition::SingletonPartition(s);
  auto advice = SuggestThresholds(rel, part);
  ASSERT_TRUE(advice.ok());
  EXPECT_DOUBLE_EQ(advice->initial_diameters[0], 0.0);
  EXPECT_LT(advice->density_thresholds[0], 1.0);
  EXPECT_GT(advice->initial_diameters[1], 0.0);
  EXPECT_NE(advice->rationale.find("discrete"), std::string::npos);
}

TEST(AdvisorTest, AdvisedThresholdsRecoverPlantedStructure) {
  // End-to-end: mine with nothing but the advisor's output and expect the
  // planted 1:1 links to appear.
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 57);
  auto data = GeneratePlanted(spec, 4000, 58);
  ASSERT_TRUE(data.ok());
  auto advice = SuggestThresholds(data->relation, data->partition);
  ASSERT_TRUE(advice.ok());

  DarConfig config;
  config.memory_budget_bytes = 16u << 20;
  config.frequency_fraction = 0.05;
  config.initial_diameters = advice->initial_diameters;
  config.density_thresholds = advice->density_thresholds;
  config.degree_thresholds = advice->degree_thresholds;
  config.refine_clusters = true;
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto result = session->Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  // All 3 clusters per part recovered and a healthy number of rules found.
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(result->phase1().clusters.ClustersOnPart(p).size(), 3u);
  }
  EXPECT_GE(result->rules().size(), 6u);
}

TEST(AdvisorTest, TiedColumnFallsBackToSpreadFraction) {
  Schema s = *Schema::Make({{"x", AttributeKind::kInterval}});
  Relation rel(s);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.AppendRow({i < 45 ? 5.0 : 100.0}).ok());
  }
  AttributePartition part = AttributePartition::SingletonPartition(s);
  auto advice = SuggestThresholds(rel, part);
  ASSERT_TRUE(advice.ok());
  // Median NN distance is 0 (ties); diameter must still be positive.
  EXPECT_GT(advice->initial_diameters[0], 0.0);
}

}  // namespace
}  // namespace dar
