// dar::Session: the determinism guarantee (bit-identical output for every
// executor and thread count, including the telemetry snapshot's
// deterministic JSON view), observer counter consistency, and
// streaming-vs-batch Phase I equivalence.

#include "core/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "core/observer.h"
#include "core/phase1_builder.h"
#include "datagen/planted.h"
#include "telemetry/json.h"

namespace dar {
namespace {

// A workload small enough for CI but rich enough to exercise every stage:
// multiple parts, planted cross-part patterns, outliers, rebuilds-free
// budget, rule support counting on.
PlantedDataset TestData() {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, 3000, 32);
  EXPECT_TRUE(data.ok()) << data.status();
  return *std::move(data);
}

DarConfig TestConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  config.count_rule_support = true;
  return config;
}

// Bitwise CF equality: n, linear sums, squares, min/max per dimension.
void ExpectSameCf(const CfVector& a, const CfVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.n(), b.n());
  for (size_t d = 0; d < a.dim(); ++d) {
    EXPECT_EQ(a.ls()[d], b.ls()[d]);
    EXPECT_EQ(a.ss()[d], b.ss()[d]);
    EXPECT_EQ(a.min()[d], b.min()[d]);
    EXPECT_EQ(a.max()[d], b.max()[d]);
  }
}

void ExpectSameAcf(const Acf& a, const Acf& b) {
  ASSERT_EQ(a.own_part(), b.own_part());
  ASSERT_EQ(a.layout().num_parts(), b.layout().num_parts());
  for (size_t p = 0; p < a.layout().num_parts(); ++p) {
    ExpectSameCf(a.image(p), b.image(p));
  }
}

void ExpectSamePhase1(const Phase1Result& a, const Phase1Result& b) {
  EXPECT_EQ(a.frequency_threshold, b.frequency_threshold);
  EXPECT_EQ(a.effective_d0, b.effective_d0);
  EXPECT_EQ(a.raw_cluster_counts, b.raw_cluster_counts);
  ASSERT_EQ(a.tree_stats.size(), b.tree_stats.size());
  for (size_t p = 0; p < a.tree_stats.size(); ++p) {
    EXPECT_EQ(a.tree_stats[p].num_leaf_entries, b.tree_stats[p].num_leaf_entries);
    EXPECT_EQ(a.tree_stats[p].rebuild_count, b.tree_stats[p].rebuild_count);
    EXPECT_EQ(a.tree_stats[p].threshold, b.tree_stats[p].threshold);
    EXPECT_EQ(a.tree_stats[p].points_inserted, b.tree_stats[p].points_inserted);
  }
  ASSERT_EQ(a.outliers.size(), b.outliers.size());
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    ExpectSameAcf(a.outliers[i], b.outliers[i]);
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    const FoundCluster& ca = a.clusters.cluster(i);
    const FoundCluster& cb = b.clusters.cluster(i);
    EXPECT_EQ(ca.id, cb.id);
    EXPECT_EQ(ca.part, cb.part);
    ExpectSameAcf(ca.acf, cb.acf);
  }
}

void ExpectSamePhase2(const Phase2Result& a, const Phase2Result& b) {
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.cliques, b.cliques);  // exact, including order
  EXPECT_EQ(a.num_nontrivial_cliques, b.num_nontrivial_cliques);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].antecedent, b.rules[i].antecedent);
    EXPECT_EQ(a.rules[i].consequent, b.rules[i].consequent);
    EXPECT_EQ(a.rules[i].degree, b.rules[i].degree);  // bitwise
    EXPECT_EQ(a.rules[i].cooccurrence_slack, b.rules[i].cooccurrence_slack);
    EXPECT_EQ(a.rules[i].support_count, b.rules[i].support_count);
  }
}

// Serializes the deterministic (timing-free) view of a run's snapshot.
std::string DeterministicJson(const MiningReport& report) {
  telemetry::JsonExporterOptions options;
  options.include_timings = false;
  return telemetry::JsonExporter(options).Export(report.telemetry);
}

Result<MiningReport> MineWithThreads(const PlantedDataset& data,
                                     int threads,
                                     std::shared_ptr<MiningObserver>
                                         observer = nullptr) {
  Session::Builder builder;
  builder.WithConfig(TestConfig()).WithThreads(threads);
  if (observer != nullptr) builder.AddObserver(std::move(observer));
  auto session = builder.Build();
  if (!session.ok()) return session.status();
  return session->Mine(data.relation, data.partition);
}

class SessionDeterminismTest : public ::testing::TestWithParam<int> {};

// The headline guarantee: ThreadPoolExecutor(k) output is bit-identical to
// SerialExecutor output — clusters, stats, outliers, graph counters,
// cliques (same order), rules (same order, same degrees, same supports).
TEST_P(SessionDeterminismTest, MatchesSerialBitForBit) {
  PlantedDataset data = TestData();
  auto serial = MineWithThreads(data, 1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->rules().size(), 0u)
      << "workload must produce rules for the comparison to mean anything";

  auto parallel = MineWithThreads(data, GetParam());
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSamePhase1(serial->phase1(), parallel->phase1());
  ExpectSamePhase2(serial->phase2(), parallel->phase2());
  // The snapshot's deterministic view serializes to the same bytes too.
  EXPECT_EQ(DeterministicJson(*serial), DeterministicJson(*parallel));
}

INSTANTIATE_TEST_SUITE_P(Threads, SessionDeterminismTest,
                         ::testing::Values(1, 2, 8));

TEST(SessionTest, RepeatedRunsOnOnePoolAreIdentical) {
  PlantedDataset data = TestData();
  auto session = Session::Builder()
                     .WithConfig(TestConfig())
                     .WithThreads(4)
                     .Build();
  ASSERT_TRUE(session.ok());
  auto a = session->Mine(data.relation, data.partition);
  auto b = session->Mine(data.relation, data.partition);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSamePhase1(a->phase1(), b->phase1());
  ExpectSamePhase2(a->phase2(), b->phase2());
  // The registry is reset per Mine call, so repeated runs also snapshot
  // identically (no cross-run accumulation).
  EXPECT_EQ(DeterministicJson(*a), DeterministicJson(*b));
}

TEST(SessionTest, CountersObserverMatchesResultCounters) {
  PlantedDataset data = TestData();
  for (int threads : {1, 8}) {
    auto counters = std::make_shared<CountersObserver>();
    auto result = MineWithThreads(data, threads, counters);
    ASSERT_TRUE(result.ok()) << result.status();
    CountersObserver::Counters c = counters->counters();
    const auto num_parts =
        static_cast<int64_t>(result->phase1().tree_stats.size());
    EXPECT_EQ(c.parts_started, num_parts) << "threads=" << threads;
    EXPECT_EQ(c.parts_done, num_parts);
    int64_t rebuilds = 0;
    for (const auto& stats : result->phase1().tree_stats) {
      rebuilds += stats.rebuild_count;
    }
    EXPECT_EQ(c.tree_rebuilds, rebuilds);
    EXPECT_EQ(c.graph_edges,
              static_cast<int64_t>(result->phase2().graph_edges));
    EXPECT_EQ(c.cliques_found,
              static_cast<int64_t>(result->phase2().cliques.size()));
    EXPECT_EQ(c.runs_completed, 1);
    // The snapshot views agree with the observer and the result structs.
    EXPECT_EQ(result->tree_rebuilds(), rebuilds);
    EXPECT_EQ(result->telemetry.CounterOr("phase2.graph_edges"),
              static_cast<int64_t>(result->phase2().graph_edges));
    EXPECT_EQ(result->telemetry.CounterOr("phase2.cliques"),
              static_cast<int64_t>(result->phase2().cliques.size()));
    EXPECT_GT(result->graph_comparisons_made(), 0);
  }
}

TEST(SessionTest, ObserversFireInRegistrationOrderForPhase2) {
  // Phase-II callbacks are serialized; two observers must see identical
  // event streams.
  PlantedDataset data = TestData();
  auto first = std::make_shared<CountersObserver>();
  auto second = std::make_shared<CountersObserver>();
  auto session = Session::Builder()
                     .WithConfig(TestConfig())
                     .WithThreads(2)
                     .AddObserver(first)
                     .AddObserver(second)
                     .Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Mine(data.relation, data.partition).ok());
  CountersObserver::Counters a = first->counters();
  CountersObserver::Counters b = second->counters();
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.cliques_found, b.cliques_found);
  EXPECT_EQ(a.parts_done, b.parts_done);
}

// The satellite determinism pin: identical runs at 1 and 8 threads export
// byte-identical deterministic JSON (and a second 8-thread run matches a
// re-serialization exactly, i.e. serialization itself is stable).
TEST(SessionTest, DeterministicJsonIdenticalAcrossThreadCounts) {
  PlantedDataset data = TestData();
  auto one = MineWithThreads(data, 1);
  auto eight = MineWithThreads(data, 8);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(eight.ok());
  const std::string json_one = DeterministicJson(*one);
  EXPECT_EQ(json_one, DeterministicJson(*eight));
  EXPECT_EQ(json_one, DeterministicJson(*one));  // stable re-serialization
  EXPECT_NE(json_one.find("\"phase1.rows\""), std::string::npos);
  EXPECT_NE(json_one.find("\"phase2.graph_edges\""), std::string::npos);
  // Timing metrics exist in the full export but not the deterministic view.
  const std::string full = telemetry::JsonExporter().Export(one->telemetry);
  EXPECT_NE(full.find("\"phase1.seconds\""), std::string::npos);
  EXPECT_EQ(json_one.find("\"phase1.seconds\""), std::string::npos);
}

// OnRunComplete fires exactly once per Mine call, after both phases.
TEST(SessionTest, OnRunCompleteFiresExactlyOncePerRun) {
  PlantedDataset data = TestData();
  auto counters = std::make_shared<CountersObserver>();
  auto session = Session::Builder()
                     .WithConfig(TestConfig())
                     .WithThreads(2)
                     .AddObserver(counters)
                     .Build();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Mine(data.relation, data.partition).ok());
  EXPECT_EQ(counters->counters().runs_completed, 1);
  ASSERT_TRUE(session->Mine(data.relation, data.partition).ok());
  EXPECT_EQ(counters->counters().runs_completed, 2);
}

TEST(SessionTest, StreamingAddRowMatchesBatchAddRelation) {
  // The §3 streaming mode and the part-parallel batch mode must build the
  // exact same trees (per-tree insert order and outlier-paging cadence are
  // identical by construction).
  PlantedDataset data = TestData();
  DarConfig config = TestConfig();
  const Schema& schema = data.relation.schema();

  auto streaming = Phase1Builder::Make(config, schema, data.partition);
  ASSERT_TRUE(streaming.ok());
  for (size_t r = 0; r < data.relation.num_rows(); ++r) {
    std::vector<double> row = data.relation.Row(r);
    ASSERT_TRUE(streaming->AddRow(row).ok());
  }
  auto streamed = std::move(*streaming).Finish();
  ASSERT_TRUE(streamed.ok());

  ThreadPoolExecutor pool(8);
  auto batch = Phase1Builder::Make(config, schema, data.partition, &pool);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->AddRelation(data.relation).ok());
  EXPECT_EQ(batch->rows_added(),
            static_cast<int64_t>(data.relation.num_rows()));
  auto batched = std::move(*batch).Finish();
  ASSERT_TRUE(batched.ok());

  ExpectSamePhase1(*streamed, *batched);
}

TEST(SessionTest, MineRejectsEmptyRelation) {
  PlantedDataset data = TestData();
  Relation empty(data.relation.schema());
  auto session = Session::Builder().WithConfig(TestConfig()).Build();
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(
      session->Mine(empty, data.partition).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dar
