#include "datagen/planted.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/fixtures.h"

namespace dar {
namespace {

TEST(PlantedTest, ValidatesSpec) {
  PlantedDataSpec empty;
  EXPECT_TRUE(GeneratePlanted(empty, 10, 1).status().IsInvalidArgument());

  PlantedDataSpec no_patterns;
  no_patterns.parts.push_back({"x", 1, MetricKind::kEuclidean,
                               {{{5}, 1.0}}, 0, 10});
  EXPECT_TRUE(
      GeneratePlanted(no_patterns, 10, 1).status().IsInvalidArgument());

  PlantedDataSpec bad_pattern = no_patterns;
  bad_pattern.patterns.push_back({{7}, 1.0});  // unknown cluster index
  EXPECT_TRUE(
      GeneratePlanted(bad_pattern, 10, 1).status().IsInvalidArgument());

  PlantedDataSpec bad_dim = no_patterns;
  bad_dim.parts[0].clusters[0].center = {1, 2};  // 2-d center for 1-d part
  bad_dim.patterns.push_back({{0}, 1.0});
  EXPECT_TRUE(GeneratePlanted(bad_dim, 10, 1).status().IsInvalidArgument());
}

TEST(PlantedTest, SeedDeterminism) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.1, 42);
  auto a = GeneratePlanted(spec, 200, 7);
  auto b = GeneratePlanted(spec, 200, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(a->relation.Row(r), b->relation.Row(r));
    EXPECT_EQ(a->pattern_of_row[r], b->pattern_of_row[r]);
  }
}

TEST(PlantedTest, DifferentSeedsDiffer) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 42);
  auto a = GeneratePlanted(spec, 50, 1);
  auto b = GeneratePlanted(spec, 50, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = false;
  for (size_t r = 0; r < 50 && !any_diff; ++r) {
    if (a->relation.Row(r) != b->relation.Row(r)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PlantedTest, PatternRowsNearTheirClusters) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 4, 0.0, 9);
  auto data = GeneratePlanted(spec, 500, 10);
  ASSERT_TRUE(data.ok());
  for (size_t r = 0; r < 500; ++r) {
    int32_t k = data->pattern_of_row[r];
    ASSERT_GE(k, 0);
    for (size_t p = 0; p < 3; ++p) {
      double v = data->relation.at(r, p);
      double center = spec.parts[p]
                          .clusters[spec.patterns[k].cluster_of_part[p]]
                          .center[0];
      EXPECT_LT(std::fabs(v - center), 8 * spec.parts[p].clusters[0].stddev);
    }
  }
}

TEST(PlantedTest, OutlierFractionApproximatelyRespected) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 3, 0.3, 11);
  auto data = GeneratePlanted(spec, 5000, 12);
  ASSERT_TRUE(data.ok());
  size_t outliers = 0;
  for (int32_t p : data->pattern_of_row) {
    if (p < 0) ++outliers;
  }
  EXPECT_NEAR(static_cast<double>(outliers) / 5000, 0.3, 0.03);
}

TEST(PlantedTest, PartitionMatchesParts) {
  PlantedDataSpec spec = WbcdLikeSpec(4, 2, 0.0, 13);
  auto data = GeneratePlanted(spec, 10, 14);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->partition.num_parts(), 4u);
  EXPECT_EQ(data->relation.num_columns(), 4u);
  EXPECT_EQ(data->partition.part(0).label, "attr0");
}

TEST(PlantedTest, WbcdSpecShape) {
  PlantedDataSpec spec = WbcdLikeSpec(30, 35, 0.2, 1);
  EXPECT_EQ(spec.parts.size(), 30u);
  EXPECT_EQ(spec.patterns.size(), 35u);
  for (const auto& part : spec.parts) {
    EXPECT_EQ(part.clusters.size(), 35u);
  }
  // Centers are separated by at least half a slot.
  for (const auto& part : spec.parts) {
    for (size_t i = 1; i < part.clusters.size(); ++i) {
      EXPECT_GT(part.clusters[i].center[0] - part.clusters[i - 1].center[0],
                0.5 * 1000.0 / 35);
    }
  }
}

TEST(PartialPatternTest, ValidatesArguments) {
  EXPECT_FALSE(WbcdPartialPatternSpec(10, 5, 20, 0, 0.1, 1).ok());
  EXPECT_FALSE(WbcdPartialPatternSpec(10, 5, 20, 11, 0.1, 1).ok());
  // 20 patterns x 5 attrs over 10 attributes = 10 claims/attr, needs > 10
  // clusters to leave background room.
  EXPECT_FALSE(WbcdPartialPatternSpec(10, 10, 20, 5, 0.1, 1).ok());
  EXPECT_TRUE(WbcdPartialPatternSpec(10, 12, 20, 5, 0.1, 1).ok());
}

TEST(PartialPatternTest, ClaimsAreDedicatedAndEven) {
  auto spec = WbcdPartialPatternSpec(30, 35, 90, 6, 0.2, 3);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->patterns.size(), 90u);
  size_t claims_per_attr = 90 * 6 / 30;  // 18
  // Every pattern covers exactly 6 attributes; claimed clusters are unique
  // per attribute.
  std::vector<std::set<int64_t>> claimed(30);
  for (const auto& pat : spec->patterns) {
    size_t covered = 0;
    for (size_t a = 0; a < 30; ++a) {
      if (pat.cluster_of_part[a] < 0) continue;
      ++covered;
      EXPECT_TRUE(claimed[a].insert(pat.cluster_of_part[a]).second);
      EXPECT_LT(pat.cluster_of_part[a], 35);
    }
    EXPECT_EQ(covered, 6u);
  }
  for (size_t a = 0; a < 30; ++a) {
    EXPECT_EQ(claimed[a].size(), claims_per_attr);
  }
  // Background choices are exactly the complement of the claimed set.
  ASSERT_EQ(spec->background_choices.size(), 30u);
  for (size_t a = 0; a < 30; ++a) {
    const auto& bg = spec->background_choices[a];
    EXPECT_EQ(bg.size(), 35u - claims_per_attr);
    for (size_t idx : bg) {
      EXPECT_EQ(claimed[a].count(static_cast<int64_t>(idx)), 0u);
    }
  }
}

TEST(PartialPatternTest, UnconstrainedPartsUseBackgroundClusters) {
  auto spec = WbcdPartialPatternSpec(6, 8, 6, 2, 0.0, 5);
  ASSERT_TRUE(spec.ok());
  auto data = GeneratePlanted(*spec, 2000, 6);
  ASSERT_TRUE(data.ok());
  std::vector<std::set<size_t>> background(6);
  for (size_t a = 0; a < 6; ++a) {
    background[a] = {spec->background_choices[a].begin(),
                     spec->background_choices[a].end()};
  }
  // For every tuple and unconstrained part, the value must be near a
  // background cluster center (index >= claims_per_attr).
  for (size_t r = 0; r < 200; ++r) {
    int32_t k = data->pattern_of_row[r];
    ASSERT_GE(k, 0);
    for (size_t a = 0; a < 6; ++a) {
      double v = data->relation.at(r, a);
      int64_t planted = spec->patterns[k].cluster_of_part[a];
      double best = 1e18;
      size_t best_idx = 0;
      for (size_t c = 0; c < spec->parts[a].clusters.size(); ++c) {
        double d = std::fabs(spec->parts[a].clusters[c].center[0] - v);
        if (d < best) {
          best = d;
          best_idx = c;
        }
      }
      if (planted >= 0) {
        EXPECT_EQ(best_idx, static_cast<size_t>(planted));
      } else {
        EXPECT_TRUE(background[a].count(best_idx))
            << "row " << r << " attr " << a;
      }
    }
  }
}

TEST(PartialPatternTest, GenerationIsDeterministic) {
  auto a = WbcdPartialPatternSpec(10, 12, 15, 3, 0.1, 9);
  auto b = WbcdPartialPatternSpec(10, 12, 15, 3, 0.1, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t p = 0; p < a->patterns.size(); ++p) {
    EXPECT_EQ(a->patterns[p].cluster_of_part, b->patterns[p].cluster_of_part);
  }
}

TEST(PlantedTest, ValidatesBackgroundChoices) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 3, 0.0, 1);
  spec.background_choices = {{0}, {9}};  // 9 out of range
  EXPECT_TRUE(GeneratePlanted(spec, 10, 1).status().IsInvalidArgument());
  spec.background_choices = {{0}};  // wrong size
  EXPECT_TRUE(GeneratePlanted(spec, 10, 1).status().IsInvalidArgument());
}

TEST(FixturesTest, Fig1Column) {
  auto col = Fig1SalaryColumn();
  ASSERT_EQ(col.size(), 6u);
  EXPECT_DOUBLE_EQ(col.front(), 18000);
  EXPECT_DOUBLE_EQ(col.back(), 82000);
}

TEST(FixturesTest, Fig2RelationsShape) {
  CsvTable r1 = Fig2RelationR1();
  CsvTable r2 = Fig2RelationR2();
  EXPECT_EQ(r1.relation.num_rows(), 6u);
  EXPECT_EQ(r2.relation.num_rows(), 6u);
  // Same except the last two salaries.
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(r1.relation.Row(r), r2.relation.Row(r));
  }
  EXPECT_DOUBLE_EQ(r1.relation.at(4, 2), 100000);
  EXPECT_DOUBLE_EQ(r2.relation.at(4, 2), 41000);
  auto part = Fig2Partition(r1.relation.schema());
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_parts(), 3u);
}

TEST(FixturesTest, Fig4DatasetShape) {
  Fig4Options opts;
  auto data = MakeFig4Dataset(opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->relation.num_rows(), 15u);  // 10 + 2 + 3
  Fig4Options scaled = opts;
  scaled.scale = 4;
  auto big = MakeFig4Dataset(scaled);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->relation.num_rows(), 60u);
  Fig4Options bad;
  bad.intersection = 0;
  EXPECT_TRUE(MakeFig4Dataset(bad).status().IsInvalidArgument());
}

TEST(FixturesTest, InsuranceSpecIsValid) {
  PlantedDataSpec spec = InsuranceSpec();
  auto data = GeneratePlanted(spec, 1000, 3);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->relation.num_columns(), 3u);
  EXPECT_EQ(data->relation.schema().attribute(0).name, "Age");
}

}  // namespace
}  // namespace dar
