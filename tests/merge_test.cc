// Distributed shard-merge mining (core/merge.h, persist/merge.h,
// core/coordinator.h): ACF additivity (Eq. 3/7, Thm 6.1) lets Phase I run
// independently over disjoint shards and merge at the summary level. The
// acceptance pins here: MineSharded / 8-shard MergeCheckpoints + one
// Phase II equal single-node Mine on exact (integer-valued) data at any
// shard count in {1,2,4,8} and any thread count, and every merge
// incompatibility surfaces as a descriptive error Status (run under
// -DDAR_SANITIZE=address,undefined via `ctest -L ubsan`).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "core/merge.h"
#include "core/session.h"
#include "datagen/planted.h"
#include "persist/checkpoint_io.h"
#include "persist/merge.h"
#include "persist/wire.h"
#include "stream/streaming_miner.h"

namespace dar {
namespace {

// ---------------------------------------------------------------------
// Workloads.

struct IntDataset {
  Schema schema;
  Relation relation;
  AttributePartition partition;

  IntDataset() : schema(MakeSchema()), relation(schema) {}

 private:
  static Schema MakeSchema() {
    return Schema::Make({{"X", AttributeKind::kInterval},
                         {"Y", AttributeKind::kInterval},
                         {"Z", AttributeKind::kInterval}})
        .ValueOrDie();
  }
};

// Three interleaved co-occurrence patterns over three attributes, every
// value a small exact integer: pattern k lives near (100k, 100k, 100k).
// Integer coordinates make all CF sums exact doubles, so re-grouping them
// across shard boundaries is associative and merge results are bit-equal
// to single-node results — the "exact data" leg of the equivalence claim.
IntDataset IntData(size_t rows_per_pattern = 400) {
  IntDataset data;
  data.partition = AttributePartition::Make(
                       data.schema, {{{"X"}, MetricKind::kEuclidean},
                                     {{"Y"}, MetricKind::kEuclidean},
                                     {{"Z"}, MetricKind::kEuclidean}})
                       .ValueOrDie();
  for (size_t i = 0; i < rows_per_pattern; ++i) {
    for (int k = 0; k < 3; ++k) {  // interleaved: shards cut mid-pattern
      const double base = 100.0 * k;
      EXPECT_TRUE(data.relation
                      .AppendRow({base + static_cast<double>(i % 5),
                                  base + static_cast<double>(i % 7),
                                  base + static_cast<double>(i % 3)})
                      .ok());
    }
  }
  return data;
}

DarConfig IntConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters = {30.0, 30.0, 30.0};
  config.degree_threshold = 150.0;
  return config;
}

// Float (Gaussian planted) workload for the determinism pins, where values
// need not be exact — only bit-reproducible.
PlantedDataset FloatData() {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, 3000, 32);
  EXPECT_TRUE(data.ok()) << data.status();
  return *std::move(data);
}

DarConfig FloatConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  config.count_rule_support = false;
  return config;
}

Result<Session> MakeSession(const DarConfig& config, int threads = 1) {
  return Session::Builder().WithConfig(config).WithThreads(threads).Build();
}

void ExpectSameRules(const std::vector<DistanceRule>& a,
                     const std::vector<DistanceRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].antecedent, b[i].antecedent);
    EXPECT_EQ(a[i].consequent, b[i].consequent);
    EXPECT_EQ(a[i].degree, b[i].degree);  // bitwise
    EXPECT_EQ(a[i].cooccurrence_slack, b[i].cooccurrence_slack);
    EXPECT_EQ(a[i].support_count, b[i].support_count);
  }
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Mines rows [begin, end) in a one-shot serial worker process stand-in:
// open a stream, ingest the slice, checkpoint it under `shard_id`.
std::string WriteShardCheckpoint(const Session& session, const Relation& rel,
                                 const AttributePartition& partition,
                                 size_t begin, size_t end, int64_t shard_id,
                                 const std::string& name,
                                 std::span<const Dictionary> dicts = {}) {
  StreamConfig sc;
  sc.remine_every_rows = 0;
  sc.shard_id = shard_id;
  auto stream = session.OpenStream(rel.schema(), partition, sc);
  EXPECT_TRUE(stream.ok()) << stream.status();
  for (size_t r = begin; r < end; ++r) {
    EXPECT_TRUE((*stream)->IngestRow(rel.Row(r)).ok());
  }
  const std::string path = TempPath(name);
  EXPECT_TRUE((*stream)->SaveCheckpoint(path, dicts).ok());
  return path;
}

// ---------------------------------------------------------------------
// Builder-level merge.

TEST(MergeBuildersTest, TwoHalvesEqualTheWhole) {
  IntDataset data = IntData();
  const DarConfig config = IntConfig();
  const size_t half = data.relation.num_rows() / 2;

  auto make_over = [&](size_t begin, size_t end) {
    auto builder =
        Phase1Builder::Make(config, data.schema, data.partition);
    EXPECT_TRUE(builder.ok()) << builder.status();
    for (size_t r = begin; r < end; ++r) {
      EXPECT_TRUE(builder->AddRow(data.relation.Row(r)).ok());
    }
    return std::move(*builder);
  };

  Phase1Builder merged = make_over(0, half);
  Phase1Builder second = make_over(half, data.relation.num_rows());
  Phase1Builder whole = make_over(0, data.relation.num_rows());
  ASSERT_TRUE(MergeBuilders(merged, second).ok());
  EXPECT_EQ(merged.rows_added(), whole.rows_added());

  auto merged_result = std::move(merged).Finish();
  auto whole_result = std::move(whole).Finish();
  ASSERT_TRUE(merged_result.ok()) << merged_result.status();
  ASSERT_TRUE(whole_result.ok());
  ASSERT_GT(whole_result->clusters.size(), 0u);
  EXPECT_EQ(merged_result->clusters.size(), whole_result->clusters.size());
  // On exact integer data the merged summaries are bitwise the single-node
  // summaries: same per-cluster mass and centroid.
  for (size_t i = 0; i < whole_result->clusters.size(); ++i) {
    const FoundCluster& a = merged_result->clusters.cluster(i);
    const FoundCluster& b = whole_result->clusters.cluster(i);
    EXPECT_EQ(a.part, b.part);
    EXPECT_EQ(a.acf.n(), b.acf.n());
    EXPECT_EQ(a.acf.Centroid(), b.acf.Centroid());
  }
}

TEST(MergeBuildersTest, RefusesEmptyAndMismatchedInputs) {
  IntDataset data = IntData(/*rows_per_pattern=*/20);
  const DarConfig config = IntConfig();
  auto dst = Phase1Builder::Make(config, data.schema, data.partition);
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE(dst->AddRow(data.relation.Row(0)).ok());

  // Empty source: nothing to merge is a caller bug, not a no-op.
  auto empty = Phase1Builder::Make(config, data.schema, data.partition);
  ASSERT_TRUE(empty.ok());
  Status status = MergeBuilders(*dst, *empty);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("empty"), std::string::npos) << status;

  // Structurally different layout (two parts instead of three).
  auto other_partition = AttributePartition::Make(
      data.schema, {{{"X", "Y"}, MetricKind::kEuclidean},
                    {{"Z"}, MetricKind::kEuclidean}});
  ASSERT_TRUE(other_partition.ok());
  auto other = Phase1Builder::Make(config, data.schema, *other_partition);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other->AddRow(data.relation.Row(0)).ok());
  EXPECT_TRUE(MergeBuilders(*dst, *other).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// In-process sharded mining.

// The equivalence property at 1/2/4/8 shards and 1/8 threads: on exact
// data, sharded mining is indistinguishable from single-node mining —
// clusters, degrees (bitwise) and rescanned support counts all match.
TEST(CoordinatorTest, MineShardedEqualsSingleNodeOnExactData) {
  IntDataset data = IntData();
  DarConfig config = IntConfig();
  config.count_rule_support = true;  // exercise the §6.2 rescan too

  auto reference_session = MakeSession(config);
  ASSERT_TRUE(reference_session.ok());
  auto reference = reference_session->Mine(data.relation, data.partition);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_GT(reference->rules().size(), 0u)
      << "workload must produce rules for the comparison to mean anything";

  for (int threads : {1, 8}) {
    auto session = MakeSession(config, threads);
    ASSERT_TRUE(session.ok());
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      auto report = session->NewCoordinator().MineSharded(
          data.relation, data.partition, shards);
      ASSERT_TRUE(report.ok())
          << shards << " shards, " << threads << " threads: "
          << report.status();
      EXPECT_EQ(report->phase1().clusters.size(),
                reference->phase1().clusters.size());
      EXPECT_EQ(report->phase2().cliques, reference->phase2().cliques);
      ExpectSameRules(report->rules(), reference->rules());
      EXPECT_EQ(report->telemetry.CounterOr("merge.shards"),
                static_cast<int64_t>(shards));
      EXPECT_EQ(report->telemetry.CounterOr("merge.builder_merges"),
                static_cast<int64_t>(shards));
    }
  }
}

// On float data, results are a pure function of (data, config, shard
// count): any two thread counts produce bit-identical reports.
TEST(CoordinatorTest, MineShardedIsThreadCountInvariant) {
  PlantedDataset data = FloatData();
  const DarConfig config = FloatConfig();

  auto serial = MakeSession(config, /*threads=*/1);
  auto parallel = MakeSession(config, /*threads=*/8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  auto a =
      serial->NewCoordinator().MineSharded(data.relation, data.partition, 4);
  auto b = parallel->NewCoordinator().MineSharded(data.relation,
                                                  data.partition, 4);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_GT(a->rules().size(), 0u);
  EXPECT_EQ(a->phase1().effective_d0, b->phase1().effective_d0);
  EXPECT_EQ(a->phase2().cliques, b->phase2().cliques);
  ExpectSameRules(a->rules(), b->rules());
}

TEST(CoordinatorTest, MineShardedArgumentErrors) {
  IntDataset data = IntData(/*rows_per_pattern=*/10);
  auto session = MakeSession(IntConfig());
  ASSERT_TRUE(session.ok());
  Coordinator coordinator = session->NewCoordinator();

  EXPECT_TRUE(coordinator.MineSharded(data.relation, data.partition, 0)
                  .status()
                  .IsInvalidArgument());
  Relation empty(data.schema);
  EXPECT_TRUE(coordinator.MineSharded(empty, data.partition, 4)
                  .status()
                  .IsInvalidArgument());

  // More shards than rows: clamped, not an error (every shard non-empty).
  Relation tiny(data.schema);
  for (size_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(tiny.AppendRow(data.relation.Row(r)).ok());
  }
  EXPECT_TRUE(coordinator.MineSharded(tiny, data.partition, 8).ok());
}

// ---------------------------------------------------------------------
// Checkpoint-level merging (the cross-process half).

// Writes `num_shards` worker checkpoints over contiguous slices of `rel`,
// shard ids 0..num_shards-1. Returns the checkpoint paths.
std::vector<std::string> WriteShardFleet(const DarConfig& config,
                                         const Relation& rel,
                                         const AttributePartition& partition,
                                         size_t num_shards,
                                         const std::string& prefix) {
  auto worker_session = MakeSession(config);
  EXPECT_TRUE(worker_session.ok());
  std::vector<std::string> paths;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * rel.num_rows() / num_shards;
    const size_t end = (s + 1) * rel.num_rows() / num_shards;
    paths.push_back(WriteShardCheckpoint(
        *worker_session, rel, partition, begin, end,
        static_cast<int64_t>(s), prefix + std::to_string(s) + ".ckpt"));
  }
  return paths;
}

void RemoveAll(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) std::remove(path.c_str());
}

// The acceptance pin: 8 worker checkpoints merged + one Phase II equal
// single-node Mine over the union, at 1 and 8 coordinator threads. The
// stream retains no tuples, so support rescans are off on both sides.
TEST(MergeCheckpointsTest, EightShardsEqualSingleNodeMine) {
  IntDataset data = IntData();
  DarConfig config = IntConfig();
  config.count_rule_support = false;

  auto reference_session = MakeSession(config);
  ASSERT_TRUE(reference_session.ok());
  auto reference = reference_session->Mine(data.relation, data.partition);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->rules().size(), 0u);

  const std::vector<std::string> paths =
      WriteShardFleet(config, data.relation, data.partition, 8, "accept");
  for (int threads : {1, 8}) {
    auto coordinator_session = MakeSession(config, threads);
    ASSERT_TRUE(coordinator_session.ok());
    auto report =
        coordinator_session->NewCoordinator().MineFromCheckpoints(paths);
    ASSERT_TRUE(report.ok()) << threads << " threads: " << report.status();
    EXPECT_EQ(report->phase1().clusters.size(),
              reference->phase1().clusters.size());
    EXPECT_EQ(report->phase2().cliques, reference->phase2().cliques);
    ExpectSameRules(report->rules(), reference->rules());
    EXPECT_EQ(report->telemetry.CounterOr("merge.checkpoints"), 8);
    EXPECT_EQ(report->telemetry.CounterOr("merge.shards"), 8);
  }
  RemoveAll(paths);
}

// A merged checkpoint is itself a valid MergeCheckpoints input: merging
// can proceed in trees of any shape without changing the result.
TEST(MergeCheckpointsTest, MergedCheckpointMergesAgain) {
  IntDataset data = IntData();
  DarConfig config = IntConfig();
  config.count_rule_support = false;

  const std::vector<std::string> paths =
      WriteShardFleet(config, data.relation, data.partition, 4, "tree");

  // Merge shards {0,1,2} into one intermediate checkpoint...
  auto partial = persist::MergeCheckpoints(
      std::span<const std::string>(paths.data(), 3));
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_EQ(partial->shards.size(), 3u);
  const std::string merged_path = TempPath("tree_merged.ckpt");
  ASSERT_TRUE(persist::WriteMergedCheckpoint(*partial, merged_path).ok());

  // ...then merge it with the straggler. Provenance is the union.
  const std::vector<std::string> second_round = {merged_path, paths[3]};
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  auto tree_report =
      session->NewCoordinator().MineFromCheckpoints(second_round);
  ASSERT_TRUE(tree_report.ok()) << tree_report.status();
  auto flat_report = session->NewCoordinator().MineFromCheckpoints(paths);
  ASSERT_TRUE(flat_report.ok());
  ASSERT_GT(flat_report->rules().size(), 0u);
  ExpectSameRules(tree_report->rules(), flat_report->rules());

  auto remerged = persist::MergeCheckpoints(second_round);
  ASSERT_TRUE(remerged.ok());
  ASSERT_EQ(remerged->shards.size(), 4u);
  std::remove(merged_path.c_str());
  RemoveAll(paths);
}

// MergeOptions::config re-homes the merged summaries under new thresholds
// (warm re-mine), while MergedCheckpoint::config stays the workers' own.
TEST(MergeCheckpointsTest, WarmRemineUnderDifferentConfig) {
  IntDataset data = IntData();
  DarConfig config = IntConfig();
  config.count_rule_support = false;
  const std::vector<std::string> paths =
      WriteShardFleet(config, data.relation, data.partition, 2, "warm");

  DarConfig warm = config;
  warm.degree_threshold = 10.0;  // much stricter than the workers'
  persist::MergeOptions options;
  options.config = &warm;
  auto merged = persist::MergeCheckpoints(paths, options);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->config.degree_threshold, config.degree_threshold)
      << "MergedCheckpoint::config is the inputs' saved config";
  EXPECT_EQ(merged->builder.rows_added(),
            static_cast<int64_t>(data.relation.num_rows()));
  RemoveAll(paths);
}

// ---------------------------------------------------------------------
// Merge error paths: every incompatibility is a descriptive Status.

TEST(MergeCheckpointsTest, RejectsEmptyPathList) {
  auto merged = persist::MergeCheckpoints({});
  ASSERT_TRUE(merged.status().IsInvalidArgument());
}

TEST(MergeCheckpointsTest, RejectsSchemaMismatch) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, 0, "schema_a.ckpt");

  // Same shape, different attribute name — a different relation.
  auto other_schema = Schema::Make({{"X", AttributeKind::kInterval},
                                    {"Y", AttributeKind::kInterval},
                                    {"W", AttributeKind::kInterval}});
  ASSERT_TRUE(other_schema.ok());
  auto other_partition = AttributePartition::Make(
      *other_schema, {{{"X"}, MetricKind::kEuclidean},
                      {{"Y"}, MetricKind::kEuclidean},
                      {{"W"}, MetricKind::kEuclidean}});
  ASSERT_TRUE(other_partition.ok());
  Relation other_rel(*other_schema);
  for (size_t r = 60; r < 120; ++r) {
    ASSERT_TRUE(other_rel.AppendRow(data.relation.Row(r)).ok());
  }
  const std::string b = WriteShardCheckpoint(
      *session, other_rel, *other_partition, 0, 60, 1, "schema_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.status().IsInvalidArgument());
  EXPECT_NE(merged.status().message().find("schema mismatch"),
            std::string::npos)
      << merged.status();
  EXPECT_NE(merged.status().message().find(b), std::string::npos)
      << "error must name the offending file: " << merged.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, RejectsConfigMismatchNamingTheKnob) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session_a = MakeSession(config);
  ASSERT_TRUE(session_a.ok());
  const std::string a = WriteShardCheckpoint(
      *session_a, data.relation, data.partition, 0, 60, 0, "config_a.ckpt");

  DarConfig other = config;
  other.degree_threshold = 99.0;
  auto session_b = MakeSession(other);
  ASSERT_TRUE(session_b.ok());
  const std::string b = WriteShardCheckpoint(
      *session_b, data.relation, data.partition, 60, 120, 1, "config_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.status().IsInvalidArgument());
  EXPECT_NE(merged.status().message().find("config mismatch"),
            std::string::npos)
      << merged.status();
  EXPECT_NE(merged.status().message().find("degree_threshold"),
            std::string::npos)
      << "error must name the first differing knob: " << merged.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, RejectsPartitionMismatch) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  config.initial_diameters = {30.0, 30.0};  // two parts below
  auto session = MakeSession(IntConfig());
  ASSERT_TRUE(session.ok());
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, 0, "part_a.ckpt");

  auto grouped = AttributePartition::Make(
      data.schema, {{{"X", "Y"}, MetricKind::kEuclidean},
                    {{"Z"}, MetricKind::kEuclidean}});
  ASSERT_TRUE(grouped.ok());
  auto session_b = MakeSession(config);
  ASSERT_TRUE(session_b.ok());
  const std::string b = WriteShardCheckpoint(
      *session_b, data.relation, *grouped, 60, 120, 1, "part_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.status().IsInvalidArgument()) << merged.status();
  const std::string message = merged.status().message();
  EXPECT_TRUE(message.find("partition mismatch") != std::string::npos ||
              message.find("config mismatch") != std::string::npos)
      << merged.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, RejectsDuplicateShardIds) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, 5, "dup_a.ckpt");
  const std::string b = WriteShardCheckpoint(
      *session, data.relation, data.partition, 60, 120, 5, "dup_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.status().IsInvalidArgument());
  const std::string message = merged.status().message();
  EXPECT_NE(message.find("duplicate shard id 5"), std::string::npos)
      << merged.status();
  EXPECT_NE(message.find(a), std::string::npos) << merged.status();
  EXPECT_NE(message.find(b), std::string::npos) << merged.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, AnonymousShardsNeverCollide) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  // shard_id -1 (the default) asserts no identity: many may merge.
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, -1, "anon_a.ckpt");
  const std::string b = WriteShardCheckpoint(
      *session, data.relation, data.partition, 60, 120, -1, "anon_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_EQ(merged->shards.size(), 2u);
  EXPECT_EQ(merged->shards[0].shard_id, -1);
  EXPECT_EQ(merged->shards[1].shard_id, -1);
  EXPECT_EQ(merged->shards[0].rows + merged->shards[1].rows, 120);
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, RejectsEmptyShard) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, 0, "empty_a.ckpt");
  // A checkpoint of a stream that never ingested: 0 rows.
  const std::string b = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 0, 1, "empty_b.ckpt");

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_TRUE(merged.status().IsInvalidArgument());
  EXPECT_NE(merged.status().message().find("empty"), std::string::npos)
      << merged.status();
  EXPECT_NE(merged.status().message().find(b), std::string::npos)
      << merged.status();

  // Empty shard first: same refusal, naming the first file.
  const std::vector<std::string> reversed = {b, a};
  auto reversed_merge = persist::MergeCheckpoints(reversed);
  ASSERT_TRUE(reversed_merge.status().IsInvalidArgument());
  EXPECT_NE(reversed_merge.status().message().find(b), std::string::npos)
      << reversed_merge.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, RejectsVersionSkewedCheckpoint) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  const std::string a = WriteShardCheckpoint(
      *session, data.relation, data.partition, 0, 60, 0, "skew_a.ckpt");
  const std::string b = WriteShardCheckpoint(
      *session, data.relation, data.partition, 60, 120, 1, "skew_b.ckpt");

  // Patch b's header to claim a format_version one past the library's
  // (with a valid header CRC, so the *version*, not corruption, is what
  // gets reported).
  std::string bytes;
  {
    std::ifstream in(b, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GE(bytes.size(), persist::kHeaderBytes);
  const uint32_t skewed_version = persist::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &skewed_version, sizeof(skewed_version));
  const uint32_t header_crc =
      persist::Crc32(std::string_view(bytes.data(), 16));
  std::memcpy(bytes.data() + 16, &header_crc, sizeof(header_crc));
  {
    std::ofstream out(b, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const std::vector<std::string> paths = {a, b};
  auto merged = persist::MergeCheckpoints(paths);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("version"), std::string::npos)
      << merged.status();
  EXPECT_NE(merged.status().message().find(b), std::string::npos)
      << merged.status();
  RemoveAll(paths);
}

TEST(MergeCheckpointsTest, ReconcilesPrefixDictionariesRejectsConflicts) {
  IntDataset data = IntData(/*rows_per_pattern=*/40);
  DarConfig config = IntConfig();
  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());

  std::vector<Dictionary> short_dict(1);
  short_dict[0].Encode("low");
  std::vector<Dictionary> long_dict(1);
  long_dict[0].Encode("low");
  long_dict[0].Encode("high");
  std::vector<Dictionary> conflicting(1);
  conflicting[0].Encode("high");
  conflicting[0].Encode("low");

  const std::string a =
      WriteShardCheckpoint(*session, data.relation, data.partition, 0, 60, 0,
                           "dict_a.ckpt", short_dict);
  const std::string b =
      WriteShardCheckpoint(*session, data.relation, data.partition, 60, 120,
                           1, "dict_b.ckpt", long_dict);
  const std::string c =
      WriteShardCheckpoint(*session, data.relation, data.partition, 0, 60, 2,
                           "dict_c.ckpt", conflicting);

  // Prefix rule: {low} ⊑ {low, high}; the longer dictionary wins.
  const std::vector<std::string> compatible = {a, b};
  auto merged = persist::MergeCheckpoints(compatible);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_EQ(merged->dictionaries.size(), 1u);
  EXPECT_EQ(merged->dictionaries[0].size(), 2u);
  EXPECT_EQ(merged->dictionaries[0].Decode(1.0).ValueOrDie(), "high");

  // Same labels, different codes: unreconcilable.
  const std::vector<std::string> conflict = {a, c};
  auto refused = persist::MergeCheckpoints(conflict);
  ASSERT_TRUE(refused.status().IsInvalidArgument());
  EXPECT_NE(refused.status().message().find("dictionary"), std::string::npos)
      << refused.status();
  RemoveAll({a, b, c});
}

TEST(MergeCheckpointsTest, SingleCheckpointMergeMatchesItsOwnRemine) {
  IntDataset data = IntData();
  DarConfig config = IntConfig();
  config.count_rule_support = false;

  auto session = MakeSession(config);
  ASSERT_TRUE(session.ok());
  auto reference = session->Mine(data.relation, data.partition);
  ASSERT_TRUE(reference.ok());

  const std::vector<std::string> paths =
      WriteShardFleet(config, data.relation, data.partition, 1, "single");
  auto report = session->NewCoordinator().MineFromCheckpoints(paths);
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectSameRules(report->rules(), reference->rules());
  RemoveAll(paths);
}

}  // namespace
}  // namespace dar
