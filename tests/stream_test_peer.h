#ifndef DAR_TESTS_STREAM_TEST_PEER_H_
#define DAR_TESTS_STREAM_TEST_PEER_H_

#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/streaming_miner.h"

namespace dar {

/// Test-only backdoor, befriended by StreamingMiner. Production readers go
/// through dar::QueryService, which answers from one consistent snapshot
/// generation; tests that pin bit-equality need the published RuleSnapshot
/// itself, so they reach it through this peer instead.
struct StreamTestPeer {
  /// The stream's current published snapshot; null until the first
  /// publication. Same lock-free semantics as the production accessor.
  static std::shared_ptr<const RuleSnapshot> Snapshot(
      const StreamingMiner& stream) {
    return stream.current_snapshot();
  }

  /// Owning-copy query answer (tests trade the scratch-reuse hot path for
  /// value semantics they can EXPECT_EQ against brute force).
  struct Hits {
    std::vector<size_t> clusters;
    std::vector<size_t> rules;
  };

  /// Queries the current snapshot's RuleIndex for one tuple. NotFound when
  /// nothing has been published yet; InvalidArgument when the stream was
  /// opened with StreamConfig::build_rule_index = false.
  static Result<Hits> Query(const StreamingMiner& stream,
                            std::span<const double> row) {
    std::shared_ptr<const RuleSnapshot> snapshot = Snapshot(stream);
    if (snapshot == nullptr) {
      return Status::NotFound(
          "no RuleSnapshot published yet — ingest past the re-mine cadence "
          "or call Remine()");
    }
    const RuleIndex* index = snapshot->index();
    if (index == nullptr) {
      return Status::InvalidArgument(
          "stream was opened with StreamConfig::build_rule_index = false");
    }
    RuleIndex::QueryScratch scratch;
    DAR_ASSIGN_OR_RETURN(const RuleIndex::Hits views,
                         index->Query(row, scratch));
    return Hits{{views.clusters.begin(), views.clusters.end()},
                {views.rules.begin(), views.rules.end()}};
  }
};

}  // namespace dar

#endif  // DAR_TESTS_STREAM_TEST_PEER_H_
