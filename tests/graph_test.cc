#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/executor.h"
#include "datagen/graphs.h"
#include "graph/clique.h"
#include "telemetry/metrics.h"

namespace dar {
namespace graph {
namespace {

using Edge = std::pair<uint32_t, uint32_t>;

Graph FromGenerated(const GeneratedGraph& g) {
  return Graph::FromEdges(g.num_nodes, g.edges);
}

// Reference oracle: every subset mask of an (n <= 20)-vertex graph that is
// a clique and has no common outside neighbor. Exponential, for
// verification-sized instances only.
std::set<std::vector<uint32_t>> OracleMaximalCliques(const Graph& g) {
  size_t n = g.num_nodes();
  std::vector<uint64_t> nbr(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.Neighbors(v)) nbr[v] |= uint64_t{1} << w;
  }
  std::set<std::vector<uint32_t>> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    bool clique = true;
    for (uint32_t v = 0; v < n && clique; ++v) {
      if ((mask >> v) & 1) {
        if ((mask & ~(uint64_t{1} << v)) & ~nbr[v]) clique = false;
      }
    }
    if (!clique) continue;
    bool maximal = true;
    for (uint32_t v = 0; v < n && maximal; ++v) {
      if (!((mask >> v) & 1)) {
        if ((mask & nbr[v]) == mask) maximal = false;
      }
    }
    if (!maximal) continue;
    std::vector<uint32_t> clique_list;
    for (uint32_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1) clique_list.push_back(v);
    }
    out.insert(clique_list);
  }
  return out;
}

TEST(GraphTest, FromEdgesBuildsSortedDedupedCsr) {
  // Duplicates in both orientations collapse to one edge.
  Graph g = Graph::FromEdges(5, {{1, 0}, {0, 1}, {1, 2}, {2, 1}, {3, 1}});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(std::vector<uint32_t>(g.Neighbors(1).begin(),
                                  g.Neighbors(1).end()),
            (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(4, 0));
}

TEST(GraphTest, ComponentsOrderedBySmallestVertex) {
  // Components {0,4}, {1,2,5}, {3}.
  Graph g = Graph::FromEdges(6, {{4, 0}, {5, 1}, {2, 5}});
  Components comps = ConnectedComponents(g);
  ASSERT_EQ(comps.members.size(), 3u);
  EXPECT_EQ(comps.members[0], (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(comps.members[1], (std::vector<uint32_t>{1, 2, 5}));
  EXPECT_EQ(comps.members[2], (std::vector<uint32_t>{3}));
  EXPECT_EQ(comps.component_of[5], 1u);
  EXPECT_EQ(comps.component_of[3], 2u);
}

TEST(GraphTest, DegeneracyOfKnownGraphs) {
  // Path: degeneracy 1. Cycle: 2. K_5: 4. Star: 1.
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(DegeneracyOrder(path).degeneracy, 1u);
  Graph cycle = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(DegeneracyOrder(cycle).degeneracy, 2u);
  std::vector<Edge> k5;
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = a + 1; b < 5; ++b) k5.emplace_back(a, b);
  }
  EXPECT_EQ(DegeneracyOrder(Graph::FromEdges(5, k5)).degeneracy, 4u);
  Graph star = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Degeneracy d = DegeneracyOrder(star);
  EXPECT_EQ(d.degeneracy, 1u);
  // order/rank are a consistent permutation.
  std::vector<uint32_t> seen(5, 0);
  for (uint32_t v : d.order) ++seen[v];
  EXPECT_EQ(seen, (std::vector<uint32_t>(5, 1)));
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(d.order[d.rank[v]], v);
}

TEST(CliqueEngineTest, MatchesOracleOnRandomGnp) {
  // Seeded property test: for a spread of sizes and densities, the engine
  // agrees exactly with the exponential oracle.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    size_t n = 4 + (seed * 7) % 13;        // 4..16
    double p = 0.15 + 0.07 * static_cast<double>(seed % 10);
    auto generated = GenerateGnp(n, p, seed);
    ASSERT_TRUE(generated.ok());
    Graph g = FromGenerated(*generated);
    CliqueResult result = EnumerateMaximalCliques(g, {});
    EXPECT_FALSE(result.clique_cap_truncated);
    EXPECT_FALSE(result.step_budget_truncated);
    std::set<std::vector<uint32_t>> got(result.cliques.begin(),
                                        result.cliques.end());
    EXPECT_EQ(got.size(), result.cliques.size()) << "duplicate cliques";
    EXPECT_EQ(got, OracleMaximalCliques(g)) << "n=" << n << " p=" << p
                                            << " seed=" << seed;
  }
}

TEST(CliqueEngineTest, BitsetAndVectorBackendsAgree) {
  // Same graphs, backend forced each way via the density cutoff; dense
  // enough that the default would pick bitset.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto generated = GenerateGnp(40, 0.5, seed);
    ASSERT_TRUE(generated.ok());
    Graph g = FromGenerated(*generated);
    CliqueOptions vector_only;
    vector_only.dense_cutoff = 1.1;  // density can never reach it
    CliqueOptions bitset_only;
    bitset_only.dense_cutoff = 0.0;
    CliqueResult a = EnumerateMaximalCliques(g, vector_only);
    CliqueResult b = EnumerateMaximalCliques(g, bitset_only);
    EXPECT_EQ(a.cliques, b.cliques);
    EXPECT_EQ(a.steps, b.steps);
  }
}

TEST(CliqueEngineTest, IsolatedVerticesAreTrivialCliques) {
  Graph g = Graph::FromEdges(4, {{1, 2}});
  CliqueResult result = EnumerateMaximalCliques(g, {});
  ASSERT_EQ(result.cliques.size(), 3u);
  EXPECT_EQ(result.cliques[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(result.cliques[1], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(result.cliques[2], (std::vector<uint32_t>{3}));
  EXPECT_EQ(result.num_components, 3u);
}

TEST(CliqueEngineTest, MoonMoserCountsAndCapTruncation) {
  // K_{3,...,3} with 6 parts: exactly 3^6 = 729 maximal cliques.
  Graph g = FromGenerated(MoonMoserGraph(6));
  CliqueResult full = EnumerateMaximalCliques(g, {});
  EXPECT_EQ(full.cliques.size(), 729u);
  EXPECT_EQ(full.largest_clique, 6u);
  EXPECT_EQ(full.degeneracy, 15u);  // peel of K_{3x6}: 3*6 - 3 = 15

  // A clique cap fires the cap flag only; the kept set is the canonical
  // prefix and exactly cap-sized.
  CliqueOptions capped;
  capped.max_cliques = 100;
  CliqueResult c = EnumerateMaximalCliques(g, capped);
  EXPECT_EQ(c.cliques.size(), 100u);
  EXPECT_TRUE(c.clique_cap_truncated);
  EXPECT_FALSE(c.step_budget_truncated);

  // A step budget fires the step flag only.
  CliqueOptions stepped;
  stepped.max_steps = 10;
  CliqueResult s = EnumerateMaximalCliques(g, stepped);
  EXPECT_TRUE(s.step_budget_truncated);
  EXPECT_FALSE(s.clique_cap_truncated);
  EXPECT_LT(s.cliques.size(), 729u);
}

TEST(CliqueEngineTest, DeepCliqueEnumeratesIterativelyDense) {
  // A K_1500 drives the search 1500 frames deep — the old recursive
  // enumerator's stack would be at the mercy of frame size here; the
  // explicit-stack engine only grows a heap vector. Dense path (bitset).
  constexpr uint32_t kN = 1500;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(kN) * (kN - 1) / 2);
  for (uint32_t a = 0; a < kN; ++a) {
    for (uint32_t b = a + 1; b < kN; ++b) edges.emplace_back(a, b);
  }
  Graph g = Graph::FromEdges(kN, edges);
  CliqueResult result = EnumerateMaximalCliques(g, {});
  ASSERT_EQ(result.cliques.size(), 1u);
  EXPECT_EQ(result.cliques[0].size(), kN);
  EXPECT_EQ(result.degeneracy, kN - 1);
}

TEST(CliqueEngineTest, DeepCliqueEnumeratesIterativelySparsePath) {
  // Same depth pressure with the bitset path disabled, so the sorted-span
  // backend is the one holding the 400-deep frame stack; plus a 50k-node
  // induced path in a separate component to keep the component machinery
  // honest on long skinny structures.
  constexpr uint32_t kClique = 400;
  constexpr uint32_t kPath = 50000;
  std::vector<Edge> edges;
  for (uint32_t a = 0; a < kClique; ++a) {
    for (uint32_t b = a + 1; b < kClique; ++b) edges.emplace_back(a, b);
  }
  for (uint32_t v = kClique; v + 1 < kClique + kPath; ++v) {
    edges.emplace_back(v, v + 1);
  }
  Graph g = Graph::FromEdges(kClique + kPath, edges);
  CliqueOptions options;
  options.dense_cutoff = 1.1;  // force the vector backend everywhere
  CliqueResult result = EnumerateMaximalCliques(g, options);
  // 1 giant clique + one 2-clique per path edge.
  EXPECT_EQ(result.cliques.size(), 1u + (kPath - 1));
  EXPECT_EQ(result.num_components, 2u);
  EXPECT_EQ(result.largest_clique, kClique);
}

TEST(CliqueEngineTest, ThreadCountDoesNotChangeOutput) {
  // The adversarial generator's output, 1 thread vs 8: byte-identical
  // cliques, flags, and counts — the determinism contract of the
  // component fan-out.
  PlantedCliqueGraphSpec spec;
  spec.num_nodes = 800;
  spec.num_cliques = 30;
  spec.clique_size = 12;
  spec.overlap = 4;
  spec.background_p = 0.002;
  spec.seed = 99;
  auto generated = GeneratePlantedCliqueGraph(spec);
  ASSERT_TRUE(generated.ok());
  Graph g = FromGenerated(*generated);

  auto pool = MakeExecutor(8);
  CliqueOptions serial;
  CliqueOptions parallel = serial;
  parallel.executor = pool.get();
  CliqueResult a = EnumerateMaximalCliques(g, serial);
  CliqueResult b = EnumerateMaximalCliques(g, parallel);
  EXPECT_EQ(a.cliques, b.cliques);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.degeneracy, b.degeneracy);

  // Same with budgets in play: the truncated prefix is just as identical.
  CliqueOptions capped_serial;
  capped_serial.max_cliques = 17;
  capped_serial.max_steps = 64 * 17;
  CliqueOptions capped_parallel = capped_serial;
  capped_parallel.executor = pool.get();
  CliqueResult ca = EnumerateMaximalCliques(g, capped_serial);
  CliqueResult cb = EnumerateMaximalCliques(g, capped_parallel);
  EXPECT_EQ(ca.cliques, cb.cliques);
  EXPECT_EQ(ca.clique_cap_truncated, cb.clique_cap_truncated);
  EXPECT_EQ(ca.step_budget_truncated, cb.step_budget_truncated);
}

TEST(CliqueEngineTest, RecordsGraphTelemetry) {
  telemetry::MetricsRegistry registry;
  CliqueOptions options;
  options.telemetry = telemetry::TelemetryContext(&registry);
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}});
  CliqueResult result = EnumerateMaximalCliques(g, options);
  EXPECT_EQ(result.cliques.size(), 3u);  // {0,1,2}, {3}, {4}
  EXPECT_EQ(registry.GetCounter("graph.components")->value(), 3);
  EXPECT_EQ(registry.GetGauge("graph.degeneracy")->value(), 2.0);
  EXPECT_GT(registry.GetCounter("graph.expansion_steps")->value(), 0);
}

TEST(GraphGeneratorsTest, PlantedCliqueGraphValidatesSpec) {
  PlantedCliqueGraphSpec bad;
  bad.num_nodes = 10;
  bad.num_cliques = 4;
  bad.clique_size = 5;
  bad.overlap = 1;  // chain needs 3*4 + 5 = 17 > 10 nodes
  EXPECT_TRUE(
      GeneratePlantedCliqueGraph(bad).status().IsInvalidArgument());

  PlantedCliqueGraphSpec overlap_too_big;
  overlap_too_big.overlap = overlap_too_big.clique_size;
  EXPECT_TRUE(GeneratePlantedCliqueGraph(overlap_too_big)
                  .status()
                  .IsInvalidArgument());

  PlantedCliqueGraphSpec bad_p;
  bad_p.background_p = 1.0;
  EXPECT_TRUE(
      GeneratePlantedCliqueGraph(bad_p).status().IsInvalidArgument());
}

TEST(GraphGeneratorsTest, PlantedCliquesAreRecovered) {
  // Without background noise, the maximal cliques are exactly the planted
  // chain (plus isolated leftovers).
  PlantedCliqueGraphSpec spec;
  spec.num_nodes = 50;
  spec.num_cliques = 5;
  spec.clique_size = 8;
  spec.overlap = 3;
  spec.background_p = 0.0;
  auto generated = GeneratePlantedCliqueGraph(spec);
  ASSERT_TRUE(generated.ok());
  Graph g = FromGenerated(*generated);
  CliqueResult result = EnumerateMaximalCliques(g, {});
  size_t planted = 0;
  for (const auto& clique : result.cliques) {
    if (clique.size() == spec.clique_size) ++planted;
  }
  EXPECT_EQ(planted, spec.num_cliques);
}

TEST(GraphGeneratorsTest, GnpIsSeedDeterministicAndValid) {
  auto a = GenerateGnp(200, 0.05, 7);
  auto b = GenerateGnp(200, 0.05, 7);
  auto c = GenerateGnp(200, 0.05, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->edges, b->edges);
  EXPECT_NE(a->edges, c->edges);
  EXPECT_TRUE(std::is_sorted(a->edges.begin(), a->edges.end()));
  for (const auto& [u, v] : a->edges) EXPECT_LT(u, v);
  // ~0.05 * C(200,2) = 995 expected edges; allow generous slack.
  EXPECT_GT(a->edges.size(), 600u);
  EXPECT_LT(a->edges.size(), 1500u);

  auto empty = GenerateGnp(100, 0.0, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->edges.empty());
  EXPECT_TRUE(GenerateGnp(10, 1.0, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace graph
}  // namespace dar
