// ParallelFor semantics shared by every Executor: each index invoked
// exactly once, deterministic smallest-index error selection, n == 0,
// n far above and below the worker count, and pool reuse.

#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace dar {
namespace {

// Runs the cross-implementation contract against `ex`.
void CheckContract(Executor& ex) {
  // Every index in [0, n) exactly once, for n straddling the worker count.
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{64}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    Status s = ex.ParallelFor(n, [&](size_t i) {
      ++hits[i];
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << "n=" << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "i=" << i;
  }

  // The reported error is the smallest failing index's, and indices after
  // a failure are still attempted (side effects don't depend on timing).
  std::atomic<int> attempts{0};
  Status s = ex.ParallelFor(100, [&](size_t i) -> Status {
    ++attempts;
    if (i == 97) return Status::Internal("fail@97");
    if (i == 13) return Status::InvalidArgument("fail@13");
    return Status::OK();
  });
  EXPECT_EQ(attempts, 100);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "fail@13");
}

TEST(ExecutorTest, SerialContract) {
  SerialExecutor ex;
  EXPECT_EQ(ex.parallelism(), 1);
  CheckContract(ex);
}

TEST(ExecutorTest, SerialRunsInAscendingOrder) {
  SerialExecutor ex;
  std::vector<size_t> order;
  ASSERT_TRUE(ex.ParallelFor(5, [&](size_t i) {
                  order.push_back(i);
                  return Status::OK();
                }).ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, ThreadPoolContract) {
  for (int threads : {2, 4, 8}) {
    ThreadPoolExecutor ex(threads);
    EXPECT_EQ(ex.parallelism(), threads);
    CheckContract(ex);
  }
}

TEST(ExecutorTest, ThreadPoolClampsToAtLeastOneWorker) {
  ThreadPoolExecutor ex(0);
  EXPECT_EQ(ex.parallelism(), 1);
  CheckContract(ex);
}

TEST(ExecutorTest, ThreadPoolIsReusableAcrossLoops) {
  ThreadPoolExecutor ex(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<size_t> sum{0};
    ASSERT_TRUE(ex.ParallelFor(257, [&](size_t i) {
                    sum += i;
                    return Status::OK();
                  }).ok());
    EXPECT_EQ(sum, 257u * 256u / 2);
  }
}

TEST(ExecutorTest, ThreadPoolChunkingIsStaticAndContiguous) {
  // With no work stealing, each worker owns one contiguous index range, so
  // the set of distinct "first index seen by my thread" values is at most
  // the worker count and every thread's indices are consecutive.
  ThreadPoolExecutor ex(4);
  const size_t n = 1003;
  std::vector<std::thread::id> owner(n);
  ASSERT_TRUE(ex.ParallelFor(n, [&](size_t i) {
                  owner[i] = std::this_thread::get_id();
                  return Status::OK();
                }).ok());
  std::set<std::thread::id> distinct(owner.begin(), owner.end());
  EXPECT_LE(distinct.size(), 4u);
  // Contiguity: once the owner changes it never changes back.
  std::set<std::thread::id> closed;
  std::thread::id current = owner[0];
  for (size_t i = 1; i < n; ++i) {
    if (owner[i] == current) continue;
    closed.insert(current);
    current = owner[i];
    EXPECT_EQ(closed.count(current), 0u) << "chunk for one thread split at "
                                         << i;
  }
}

TEST(ExecutorTest, MakeExecutorDispatch) {
  EXPECT_EQ(MakeExecutor(-3)->parallelism(), 1);
  EXPECT_EQ(MakeExecutor(1)->parallelism(), 1);
  EXPECT_EQ(MakeExecutor(4)->parallelism(), 4);
  // 0 means hardware concurrency (floor 1).
  std::shared_ptr<Executor> hw = MakeExecutor(0);
  EXPECT_EQ(hw->parallelism(), HardwareParallelism());
  EXPECT_GE(hw->parallelism(), 1);
  CheckContract(*MakeExecutor(1));
  CheckContract(*MakeExecutor(4));
}

TEST(ExecutorTest, HardwareParallelismHasFloorOne) {
  EXPECT_GE(HardwareParallelism(), 1);
}

}  // namespace
}  // namespace dar
