#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "relation/csv.h"
#include "relation/metric.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace dar {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"a", AttributeKind::kInterval},
                        {"b", AttributeKind::kInterval},
                        {"c", AttributeKind::kNominal}});
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto r = Schema::Make({{"x", AttributeKind::kInterval},
                         {"x", AttributeKind::kInterval}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, MakeRejectsEmptyName) {
  auto r = Schema::Make({{"", AttributeKind::kInterval}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, IndexOf) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_TRUE(s.IndexOf("zzz").status().IsNotFound());
}

TEST(SchemaTest, EqualityAndToString) {
  Schema s = TestSchema();
  Schema t = TestSchema();
  EXPECT_TRUE(s == t);
  EXPECT_EQ(s.ToString(), "(a:interval, b:interval, c:nominal)");
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary d;
  EXPECT_DOUBLE_EQ(d.Encode("red"), 0.0);
  EXPECT_DOUBLE_EQ(d.Encode("blue"), 1.0);
  EXPECT_DOUBLE_EQ(d.Encode("red"), 0.0);  // stable
  EXPECT_EQ(*d.Decode(1.0), "blue");
  EXPECT_EQ(*d.Lookup("red"), 0.0);
  EXPECT_TRUE(d.Decode(7.0).status().IsNotFound());
  EXPECT_TRUE(d.Decode(0.5).status().IsNotFound());
  EXPECT_TRUE(d.Lookup("green").status().IsNotFound());
  EXPECT_EQ(d.size(), 2u);
}

TEST(RelationTest, AppendAndAccess) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.AppendRow({1, 2, 0}).ok());
  ASSERT_TRUE(r.AppendRow({3, 4, 1}).ok());
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.num_columns(), 3u);
  EXPECT_DOUBLE_EQ(r.at(1, 0), 3);
  EXPECT_DOUBLE_EQ(r.column(1)[0], 2);
  EXPECT_EQ(r.Row(0), (std::vector<double>{1, 2, 0}));
}

TEST(RelationTest, AppendRejectsWrongWidth) {
  Relation r(TestSchema());
  EXPECT_TRUE(r.AppendRow({1, 2}).IsInvalidArgument());
}

TEST(RelationTest, ProjectRow) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.AppendRow({10, 20, 30}).ok());
  std::vector<double> out;
  std::vector<size_t> cols = {2, 0};
  r.ProjectRow(0, cols, out);
  EXPECT_EQ(out, (std::vector<double>{30, 10}));
}

TEST(RelationTest, ProjectColumns) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.AppendRow({1, 2, 3}).ok());
  ASSERT_TRUE(r.AppendRow({4, 5, 6}).ok());
  std::vector<size_t> cols = {1};
  auto p = r.Project(cols);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_columns(), 1u);
  EXPECT_EQ(p->schema().attribute(0).name, "b");
  EXPECT_DOUBLE_EQ(p->at(1, 0), 5);
  std::vector<size_t> bad = {9};
  EXPECT_TRUE(r.Project(bad).status().IsOutOfRange());
}

TEST(RelationTest, SelectRows) {
  Relation r(TestSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(r.AppendRow({double(i), double(i * 10), 0}).ok());
  }
  std::vector<size_t> rows = {4, 0};
  auto s = r.SelectRows(rows);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(s->at(0, 1), 40);
  EXPECT_DOUBLE_EQ(s->at(1, 1), 0);
  std::vector<size_t> bad = {99};
  EXPECT_TRUE(r.SelectRows(bad).status().IsOutOfRange());
}

TEST(MetricTest, Euclidean) {
  std::vector<double> a = {0, 0}, b = {3, 4};
  EXPECT_DOUBLE_EQ(PointDistance(MetricKind::kEuclidean, a, b), 5.0);
}

TEST(MetricTest, Manhattan) {
  std::vector<double> a = {1, 1}, b = {4, -3};
  EXPECT_DOUBLE_EQ(PointDistance(MetricKind::kManhattan, a, b), 7.0);
}

TEST(MetricTest, DiscreteCountsMismatches) {
  std::vector<double> a = {1, 2, 3}, b = {1, 5, 3};
  EXPECT_DOUBLE_EQ(PointDistance(MetricKind::kDiscrete, a, b), 1.0);
  EXPECT_DOUBLE_EQ(PointDistance(MetricKind::kDiscrete, a, a), 0.0);
}

TEST(MetricTest, SquaredEuclidean) {
  std::vector<double> a = {1}, b = {4};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 9.0);
}

TEST(PartitionTest, SingletonPartitionCoversAll) {
  Schema s = TestSchema();
  AttributePartition p = AttributePartition::SingletonPartition(s);
  EXPECT_EQ(p.num_parts(), 3u);
  EXPECT_EQ(p.TotalColumns(), 3u);
  EXPECT_EQ(p.part(2).metric, MetricKind::kDiscrete);  // nominal column
  EXPECT_EQ(p.part(0).metric, MetricKind::kEuclidean);
  EXPECT_EQ(*p.PartOfColumn(1), 1u);
}

TEST(PartitionTest, MakeMultiColumnPart) {
  Schema s = TestSchema();
  auto p = AttributePartition::Make(
      s, {{{"a", "b"}, MetricKind::kEuclidean}, {{"c"}, MetricKind::kDiscrete}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_parts(), 2u);
  EXPECT_EQ(p->part(0).dimension(), 2u);
  EXPECT_EQ(p->part(0).label, "a+b");
}

TEST(PartitionTest, RejectsOverlap) {
  Schema s = TestSchema();
  auto p = AttributePartition::Make(s, {{{"a"}, MetricKind::kEuclidean},
                                        {{"a"}, MetricKind::kEuclidean}});
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(PartitionTest, RejectsNominalWithoutDiscreteMetric) {
  Schema s = TestSchema();
  auto p = AttributePartition::Make(s, {{{"c"}, MetricKind::kEuclidean}});
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(PartitionTest, RejectsUnknownAttribute) {
  Schema s = TestSchema();
  auto p = AttributePartition::Make(s, {{{"zzz"}, MetricKind::kEuclidean}});
  EXPECT_TRUE(p.status().IsNotFound());
}

TEST(PartitionTest, RejectsEmptyPart) {
  Schema s = TestSchema();
  auto p = AttributePartition::Make(s, {{{}, MetricKind::kEuclidean}});
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(CsvTest, ReadWithHeaderAndNominal) {
  std::istringstream in("job,age,salary\nDBA,30,40000\nMgr,31,50000\n");
  CsvOptions opts;
  opts.nominal_columns = {"job"};
  auto table = ReadCsv(in, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->relation.num_rows(), 2u);
  EXPECT_EQ(table->relation.schema().attribute(0).kind,
            AttributeKind::kNominal);
  EXPECT_EQ(*table->dictionaries[0].Decode(table->relation.at(1, 0)), "Mgr");
  EXPECT_DOUBLE_EQ(table->relation.at(0, 2), 40000);
}

TEST(CsvTest, ReadWithoutHeader) {
  std::istringstream in("1,2\n3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  auto table = ReadCsv(in, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->relation.schema().attribute(0).name, "c0");
  EXPECT_EQ(table->relation.num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  std::istringstream in("a,b\n1,2\n3\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsNonNumericInterval) {
  std::istringstream in("a\nhello\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, HandlesCrlf) {
  std::istringstream in("a,b\r\n1,2\r\n");
  auto table = ReadCsv(in);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->relation.at(0, 1), 2);
}

TEST(CsvTest, FinalRowWithoutTrailingNewline) {
  std::istringstream in("a,b\n1,2\n3,4");  // EOF right after the last field
  auto table = ReadCsv(in);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->relation.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table->relation.at(1, 1), 4);
}

TEST(CsvTest, RaggedRowErrorNamesPhysicalLine) {
  // Blank line before the ragged row: the error must name the physical
  // line (4), not the how-many-rows-so-far count.
  std::istringstream in("a,b\n1,2\n\n3\n");
  auto table = ReadCsv(in);
  ASSERT_TRUE(table.status().IsInvalidArgument());
  EXPECT_NE(table.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(table.status().message().find("expected 2"), std::string::npos);
}

TEST(CsvStreamReaderTest, BatchesWithPersistentDictionaries) {
  std::istringstream in("job,age\nDBA,30\nMgr,31\nDBA,32\nOps,33\nMgr,34\n");
  CsvOptions opts;
  opts.nominal_columns = {"job"};
  auto reader = CsvStreamReader::Open(in, opts);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->schema().attribute(0).kind, AttributeKind::kNominal);

  auto batch1 = reader->NextBatch(2);
  ASSERT_TRUE(batch1.ok());
  ASSERT_EQ(batch1->num_rows(), 2u);
  EXPECT_FALSE(reader->exhausted());

  auto batch2 = reader->NextBatch(2);
  ASSERT_TRUE(batch2.ok());
  ASSERT_EQ(batch2->num_rows(), 2u);
  // "DBA" in batch 2 must reuse the code assigned in batch 1.
  EXPECT_DOUBLE_EQ(batch2->at(0, 0), batch1->at(0, 0));

  auto batch3 = reader->NextBatch(2);  // only one row left
  ASSERT_TRUE(batch3.ok());
  ASSERT_EQ(batch3->num_rows(), 1u);
  EXPECT_TRUE(reader->exhausted());
  EXPECT_DOUBLE_EQ(batch3->at(0, 0), batch1->at(1, 0));  // "Mgr" again
  EXPECT_EQ(reader->dictionaries()[0].size(), 3u);  // DBA, Mgr, Ops

  auto empty = reader->NextBatch(2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
}

TEST(CsvStreamReaderTest, CrlfAndNoTrailingNewline) {
  std::istringstream in("a,b\r\n1,2\r\n3,4");
  auto reader = CsvStreamReader::Open(in);
  ASSERT_TRUE(reader.ok());
  auto batch = reader->NextBatch(100);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(batch->at(0, 1), 2);
  EXPECT_DOUBLE_EQ(batch->at(1, 1), 4);
  EXPECT_TRUE(reader->exhausted());
}

TEST(CsvStreamReaderTest, ColumnMismatchIsErrorNotSkip) {
  std::istringstream in("a,b\n1,2\n3\n5,6\n");
  auto reader = CsvStreamReader::Open(in);
  ASSERT_TRUE(reader.ok());
  auto batch = reader->NextBatch(100);
  ASSERT_TRUE(batch.status().IsInvalidArgument());
  EXPECT_NE(batch.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(batch.status().message().find("has 1 fields"), std::string::npos);
}

TEST(CsvStreamReaderTest, NoHeaderFirstRowIsData) {
  std::istringstream in("1,2\n3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  auto reader = CsvStreamReader::Open(in, opts);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->schema().attribute(1).name, "c1");
  auto batch = reader->NextBatch(10);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->num_rows(), 2u);  // the peeked first line is replayed
  EXPECT_DOUBLE_EQ(batch->at(0, 0), 1);
}

TEST(CsvStreamReaderTest, EmptyInputFailsAtOpen) {
  std::istringstream in("");
  EXPECT_TRUE(CsvStreamReader::Open(in).status().IsInvalidArgument());
}

TEST(CsvTest, SourceNamePrefixesParseErrors) {
  // A caller feeding several inputs through one code path names each one;
  // the prefix wraps whatever the parse error already said.
  std::istringstream in("a,b\n1,2\n3\n");
  CsvOptions opts;
  opts.source_name = "orders.csv";
  auto table = ReadCsv(in, opts);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("'orders.csv':"),
            std::string::npos);
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos);

  // Default options stay prefix-free: string-stream callers see the same
  // messages as before the knob existed.
  std::istringstream bare("a,b\n1,2\n3\n");
  auto bare_table = ReadCsv(bare);
  ASSERT_FALSE(bare_table.ok());
  EXPECT_EQ(bare_table.status().message().find("'"), std::string::npos);
}

TEST(CsvTest, ReadCsvFileErrorsNameThePath) {
  const std::string path =
      testing::TempDir() + "/dar_relation_test_malformed.csv";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "a,b\n1,not_a_number\n";
  }
  auto table = ReadCsvFile(path);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
  EXPECT_NE(table.status().message().find("'" + path + "':"),
            std::string::npos);
  EXPECT_NE(table.status().message().find("column 'b'"), std::string::npos);
  std::remove(path.c_str());

  auto missing = ReadCsvFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsIOError());
  EXPECT_NE(missing.status().message().find(path), std::string::npos);
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::istringstream in("job,age\nDBA,30\nMgr,31\nDBA,32\n");
  CsvOptions opts;
  opts.nominal_columns = {"job"};
  auto table = ReadCsv(in, opts);
  ASSERT_TRUE(table.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*table, out).ok());
  std::istringstream in2(out.str());
  auto table2 = ReadCsv(in2, opts);
  ASSERT_TRUE(table2.ok());
  EXPECT_EQ(table2->relation.num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(table->relation.at(r, 1), table2->relation.at(r, 1));
    EXPECT_EQ(*table->dictionaries[0].Decode(table->relation.at(r, 0)),
              *table2->dictionaries[0].Decode(table2->relation.at(r, 0)));
  }
}

}  // namespace
}  // namespace dar
