#include "core/rule_gen.h"

#include <gtest/gtest.h>

#include "core/clustering_graph.h"

namespace dar {
namespace {

// Layout with four 1-d parts A, B, C, D.
std::shared_ptr<const AcfLayout> FourPartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "A"},
                   {1, MetricKind::kEuclidean, "B"},
                   {1, MetricKind::kEuclidean, "C"},
                   {1, MetricKind::kEuclidean, "D"}};
  return layout;
}

// Cluster on `part` summarizing `tuples` over (a, b, c, d).
FoundCluster MakeCluster(std::shared_ptr<const AcfLayout> layout, size_t id,
                         size_t part,
                         const std::vector<std::array<double, 4>>& tuples) {
  FoundCluster c;
  c.id = id;
  c.part = part;
  c.acf = Acf(layout, part);
  for (const auto& t : tuples) {
    c.acf.AddRow({{t[0]}, {t[1]}, {t[2]}, {t[3]}});
  }
  return c;
}

// A population of identical tuples (10, 20, 30, 40): clusters on A, B, C
// summarizing it are mutually associated with degree 0.
ClusterSet CooccurringSet(std::shared_ptr<const AcfLayout> layout) {
  std::vector<std::array<double, 4>> tuples(5, {10, 20, 30, 40});
  std::vector<FoundCluster> clusters;
  for (size_t p = 0; p < 3; ++p) {
    clusters.push_back(MakeCluster(layout, p, p, tuples));
  }
  return ClusterSet(layout, std::move(clusters));
}

TEST(DegreeTest, ZeroForPerfectAssociation) {
  auto layout = FourPartLayout();
  ClusterSet set = CooccurringSet(layout);
  EXPECT_DOUBLE_EQ(
      DegreeOfAssociation(set, {0}, {1}, ClusterMetric::kD2AvgInter), 0.0);
}

TEST(DegreeTest, GrowsWithImageDisplacement) {
  auto layout = FourPartLayout();
  std::vector<FoundCluster> clusters;
  // Cluster on A whose B-image sits at 25; cluster on B at 20.
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 25, 0, 0}}));
  clusters.push_back(MakeCluster(layout, 1, 1, {{10, 20, 0, 0}}));
  ClusterSet set(layout, std::move(clusters));
  double d = DegreeOfAssociation(set, {0}, {1}, ClusterMetric::kD2AvgInter);
  EXPECT_NEAR(d, 5.0, 1e-9);
}

TEST(DegreeTest, MaxOverPairs) {
  auto layout = FourPartLayout();
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 20, 0, 0}}));  // on A
  clusters.push_back(MakeCluster(layout, 1, 1, {{10, 20, 0, 0}}));  // on B
  // Second antecedent on C whose B-image is displaced by 7.
  clusters.push_back(MakeCluster(layout, 2, 2, {{10, 27, 5, 0}}));
  ClusterSet set(layout, std::move(clusters));
  double d =
      DegreeOfAssociation(set, {0, 2}, {1}, ClusterMetric::kD2AvgInter);
  EXPECT_NEAR(d, 7.0, 1e-9);
}

RuleGenOptions DefaultOptions() {
  RuleGenOptions opts;
  opts.degree_threshold = 1.0;
  return opts;
}

TEST(RuleGenTest, EmitsAllArityCombinationsFromOneClique) {
  auto layout = FourPartLayout();
  ClusterSet set = CooccurringSet(layout);
  // One clique {0, 1, 2}.
  std::vector<std::vector<size_t>> cliques = {{0, 1, 2}};
  RuleGenResult result = GenerateDistanceRules(set, cliques, DefaultOptions());
  EXPECT_FALSE(result.truncated);
  // Count: for 3 mutually associated clusters with max_antecedent 3 and
  // max_consequent 2: consequent {y}: antecedents from remaining 2 ->
  // 3 subsets each, 3 choices of y = 9; consequent pairs {y1,y2}: 3 pairs,
  // antecedent = the remaining single cluster -> 3. Total 12.
  EXPECT_EQ(result.rules.size(), 12u);
  for (const auto& rule : result.rules) {
    EXPECT_NEAR(rule.degree, 0.0, 1e-9);
    // Parts disjoint.
    std::set<size_t> parts;
    for (size_t id : rule.antecedent) {
      EXPECT_TRUE(parts.insert(set.cluster(id).part).second);
    }
    for (size_t id : rule.consequent) {
      EXPECT_TRUE(parts.insert(set.cluster(id).part).second);
    }
  }
}

TEST(RuleGenTest, DegreeThresholdFiltersWeakRules) {
  auto layout = FourPartLayout();
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 90, 0, 0}}));  // far B-img
  clusters.push_back(MakeCluster(layout, 1, 1, {{10, 20, 0, 0}}));
  ClusterSet set(layout, std::move(clusters));
  std::vector<std::vector<size_t>> cliques = {{0, 1}};
  RuleGenOptions opts = DefaultOptions();
  opts.degree_threshold = 5.0;
  RuleGenResult result = GenerateDistanceRules(set, cliques, opts);
  // 0 => 1 has degree |90 - 20| = 70 > 5 (dropped). 1 => 0: the A-images
  // coincide at 10, degree 0 (kept).
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0].antecedent, (std::vector<size_t>{1}));
  EXPECT_EQ(result.rules[0].consequent, (std::vector<size_t>{0}));
}

TEST(RuleGenTest, OneWayAssociation) {
  // The paper's point (§5.2): association is one-way. Build clusters where
  // C_A's B-image is close to C_B (A => B strong) but C_B's A-image is far
  // from C_A (B => A weak).
  auto layout = FourPartLayout();
  std::vector<FoundCluster> clusters;
  // C_A summarizes tuples (10, 20): its B-image is exactly C_B's location.
  clusters.push_back(MakeCluster(layout, 0, 0, {{10, 20, 0, 0}}));
  // C_B summarizes tuples (10, 20) plus many (500, 20): its A-image
  // centroid is far from 10.
  clusters.push_back(MakeCluster(
      layout, 1, 1, {{10, 20, 0, 0}, {500, 20, 0, 0}, {500, 20, 0, 0}}));
  ClusterSet set(layout, std::move(clusters));
  double a_to_b =
      DegreeOfAssociation(set, {0}, {1}, ClusterMetric::kD2AvgInter);
  double b_to_a =
      DegreeOfAssociation(set, {1}, {0}, ClusterMetric::kD2AvgInter);
  EXPECT_LT(a_to_b, 1e-9);
  EXPECT_GT(b_to_a, 100.0);
}

TEST(RuleGenTest, CrossCliqueRules) {
  auto layout = FourPartLayout();
  // Clique 1 = {A-cluster, B-cluster} from population P1; clique 2 =
  // {C-cluster} whose images on A and B are near P1 (one-way assoc).
  std::vector<std::array<double, 4>> p1(4, {10, 20, 30, 0});
  std::vector<FoundCluster> clusters;
  clusters.push_back(MakeCluster(layout, 0, 0, p1));
  clusters.push_back(MakeCluster(layout, 1, 1, p1));
  clusters.push_back(MakeCluster(layout, 2, 2, p1));
  ClusterSet set(layout, std::move(clusters));
  // Force the clique structure: pretend graph found two cliques.
  std::vector<std::vector<size_t>> cliques = {{0, 1}, {2}};
  RuleGenResult result = GenerateDistanceRules(set, cliques, DefaultOptions());
  // Expect cross-clique rules like {0} => {2} and {0,1} => {2}.
  bool pair_to_c = false;
  for (const auto& rule : result.rules) {
    if (rule.antecedent == std::vector<size_t>{0, 1} &&
        rule.consequent == std::vector<size_t>{2}) {
      pair_to_c = true;
    }
  }
  EXPECT_TRUE(pair_to_c);
}

TEST(RuleGenTest, NoDuplicateRulesAcrossCliquePairs) {
  auto layout = FourPartLayout();
  ClusterSet set = CooccurringSet(layout);
  // Overlapping cliques sharing nodes.
  std::vector<std::vector<size_t>> cliques = {{0, 1, 2}, {0, 1}, {1, 2}};
  RuleGenResult result = GenerateDistanceRules(set, cliques, DefaultOptions());
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> unique;
  for (const auto& rule : result.rules) {
    EXPECT_TRUE(unique.emplace(rule.antecedent, rule.consequent).second);
  }
}

TEST(RuleGenTest, ArityCapsRespected) {
  auto layout = FourPartLayout();
  std::vector<std::array<double, 4>> tuples(5, {10, 20, 30, 40});
  std::vector<FoundCluster> clusters;
  for (size_t p = 0; p < 4; ++p) {
    clusters.push_back(MakeCluster(layout, p, p, tuples));
  }
  ClusterSet set(layout, std::move(clusters));
  std::vector<std::vector<size_t>> cliques = {{0, 1, 2, 3}};
  RuleGenOptions opts = DefaultOptions();
  opts.max_antecedent = 1;
  opts.max_consequent = 1;
  RuleGenResult result = GenerateDistanceRules(set, cliques, opts);
  for (const auto& rule : result.rules) {
    EXPECT_EQ(rule.antecedent.size(), 1u);
    EXPECT_EQ(rule.consequent.size(), 1u);
  }
  // 4 * 3 ordered pairs.
  EXPECT_EQ(result.rules.size(), 12u);
}

TEST(RuleGenTest, MaxRulesTruncatesLoudly) {
  auto layout = FourPartLayout();
  ClusterSet set = CooccurringSet(layout);
  std::vector<std::vector<size_t>> cliques = {{0, 1, 2}};
  RuleGenOptions opts = DefaultOptions();
  opts.max_rules = 3;
  RuleGenResult result = GenerateDistanceRules(set, cliques, opts);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.rules.size(), 3u);
}

TEST(RuleGenTest, EmptyCliquesNoRules) {
  auto layout = FourPartLayout();
  ClusterSet set = CooccurringSet(layout);
  RuleGenResult result = GenerateDistanceRules(set, {}, DefaultOptions());
  EXPECT_TRUE(result.rules.empty());
  EXPECT_FALSE(result.truncated);
}

}  // namespace
}  // namespace dar
