#ifndef DAR_TESTS_TEST_UTIL_H_
#define DAR_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "common/random.h"
#include "relation/metric.h"

namespace dar {
namespace testutil {

/// A set of points (row-major) used as brute-force reference input.
using Points = std::vector<std::vector<double>>;

inline Points RandomPoints(Rng& rng, size_t n, size_t dim, double lo = -10,
                           double hi = 10) {
  Points pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.Uniform(lo, hi);
  }
  return pts;
}

/// Points with small integer coordinates (for discrete-metric tests).
inline Points RandomDiscretePoints(Rng& rng, size_t n, size_t dim,
                                   int64_t num_values = 4) {
  Points pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<double>(rng.UniformInt(0, num_values - 1));
  }
  return pts;
}

/// Brute-force RMS pairwise distance (the CF-computable diameter form):
/// sqrt(sum_{i != j} ||p_i - p_j||^2 / (N(N-1))).
inline double BruteDiameterRms(const Points& pts) {
  size_t n = pts.size();
  if (n < 2) return 0;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += SquaredEuclidean(pts[i], pts[j]);
    }
  }
  return std::sqrt(sum / (static_cast<double>(n) * (n - 1)));
}

/// Brute-force average pairwise mismatch count (discrete diameter, Eq. 2
/// with the 0/1 metric).
inline double BruteDiameterDiscrete(const Points& pts) {
  size_t n = pts.size();
  if (n < 2) return 0;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += PointDistance(MetricKind::kDiscrete, pts[i], pts[j]);
    }
  }
  return sum / (static_cast<double>(n) * (n - 1));
}

/// Brute-force RMS inter-set distance (the CF-computable D2 form).
inline double BruteD2Rms(const Points& a, const Points& b) {
  double sum = 0;
  for (const auto& p : a) {
    for (const auto& q : b) sum += SquaredEuclidean(p, q);
  }
  return std::sqrt(sum / (static_cast<double>(a.size()) * b.size()));
}

/// Brute-force average pairwise mismatch between two sets (discrete D2 —
/// exactly Eq. 6 under the 0/1 metric).
inline double BruteD2Discrete(const Points& a, const Points& b) {
  double sum = 0;
  for (const auto& p : a) {
    for (const auto& q : b) {
      sum += PointDistance(MetricKind::kDiscrete, p, q);
    }
  }
  return sum / (static_cast<double>(a.size()) * b.size());
}

inline std::vector<double> BruteCentroid(const Points& pts) {
  std::vector<double> c(pts[0].size(), 0.0);
  for (const auto& p : pts) {
    for (size_t d = 0; d < c.size(); ++d) c[d] += p[d];
  }
  for (auto& v : c) v /= static_cast<double>(pts.size());
  return c;
}

}  // namespace testutil
}  // namespace dar

#endif  // DAR_TESTS_TEST_UTIL_H_
