#include "birch/acf_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"

namespace dar {
namespace {

std::shared_ptr<const AcfLayout> OnePartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"}};
  return layout;
}

std::shared_ptr<const AcfLayout> TwoPartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  return layout;
}

AcfTreeOptions SmallTreeOptions() {
  AcfTreeOptions opts;
  opts.branching_factor = 4;
  opts.leaf_capacity = 4;
  opts.memory_budget_bytes = 64u << 20;  // effectively unbounded
  return opts;
}

// Sums the LS of every cluster image on `part`, over clusters + outliers.
double TotalLs(const AcfTree& tree, size_t part) {
  double total = 0;
  for (const auto& c : tree.ExtractClusters()) total += c.image(part).ls()[0];
  for (const auto& c : tree.outliers()) total += c.image(part).ls()[0];
  return total;
}

TEST(AcfTreeTest, SinglePointSingleCluster) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  ASSERT_TRUE(tree.InsertPoint({{5.0}}).ok());
  auto clusters = tree.ExtractClusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].n(), 1);
  EXPECT_DOUBLE_EQ(clusters[0].Centroid()[0], 5.0);
}

TEST(AcfTreeTest, IdenticalPointsMergeAtThresholdZero) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{3.0}}).ok());
  }
  auto clusters = tree.ExtractClusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].n(), 10);
}

TEST(AcfTreeTest, DistinctPointsStaySeparateAtThresholdZero) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{double(i) * 10}}).ok());
  }
  EXPECT_EQ(tree.ExtractClusters().size(), 8u);
}

TEST(AcfTreeTest, ThresholdAbsorbsNearbyPoints) {
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 2.0;
  AcfTree tree(OnePartLayout(), 0, opts);
  // Two groups around 0 and 100.
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    double base = (i % 2 == 0) ? 0.0 : 100.0;
    ASSERT_TRUE(tree.InsertPoint({{base + rng.Uniform(-0.5, 0.5)}}).ok());
  }
  auto clusters = tree.ExtractClusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].n() + clusters[1].n(), 50);
}

TEST(AcfTreeTest, MassConservedThroughSplits) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{rng.Uniform(0, 1000)}}).ok());
  }
  EXPECT_EQ(tree.TotalMass(), 500);
  EXPECT_GT(tree.Stats().num_nodes, 1u);
  EXPECT_EQ(tree.Stats().num_leaf_entries, tree.ExtractClusters().size());
}

TEST(AcfTreeTest, LinearSumsConservedThroughSplits) {
  AcfTree tree(TwoPartLayout(), 0, SmallTreeOptions());
  Rng rng(5);
  double sum_x = 0, sum_y = 0;
  for (int i = 0; i < 300; ++i) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(-50, 50);
    sum_x += x;
    sum_y += y;
    ASSERT_TRUE(tree.InsertPoint({{x}, {y}}).ok());
  }
  EXPECT_NEAR(TotalLs(tree, 0), sum_x, 1e-6);
  EXPECT_NEAR(TotalLs(tree, 1), sum_y, 1e-6);
}

TEST(AcfTreeTest, MemoryPressureTriggersRebuild) {
  AcfTreeOptions opts = SmallTreeOptions();
  opts.memory_budget_bytes = 16 << 10;  // 16 KB: forces threshold adaptation
  AcfTree tree(OnePartLayout(), 0, opts);
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{rng.Uniform(0, 1e6)}}).ok());
  }
  EXPECT_GT(tree.rebuild_count(), 0);
  EXPECT_GT(tree.threshold(), 0.0);
  EXPECT_EQ(tree.TotalMass(), 3000);
  EXPECT_LE(tree.Stats().approx_bytes, opts.memory_budget_bytes);
}

TEST(AcfTreeTest, RebuildPreservesLinearSums) {
  AcfTreeOptions opts = SmallTreeOptions();
  opts.memory_budget_bytes = 16 << 10;
  AcfTree tree(TwoPartLayout(), 0, opts);
  Rng rng(7);
  double sum_x = 0, sum_y = 0;
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Uniform(0, 1e5), y = rng.Uniform(0, 10);
    sum_x += x;
    sum_y += y;
    ASSERT_TRUE(tree.InsertPoint({{x}, {y}}).ok());
  }
  ASSERT_GT(tree.rebuild_count(), 0);
  EXPECT_NEAR(TotalLs(tree, 0) / sum_x, 1.0, 1e-9);
  EXPECT_NEAR(TotalLs(tree, 1) / sum_y, 1.0, 1e-9);
}

TEST(AcfTreeTest, ImpossibleBudgetFailsCleanly) {
  AcfTreeOptions opts = SmallTreeOptions();
  opts.memory_budget_bytes = 1;  // can never hold even the root
  AcfTree tree(OnePartLayout(), 0, opts);
  Status s = tree.InsertPoint({{1.0}});
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(AcfTreeTest, InsertPointValidatesShape) {
  AcfTree tree(TwoPartLayout(), 0, SmallTreeOptions());
  EXPECT_TRUE(tree.InsertPoint({{1.0}}).IsInvalidArgument());  // 1 part
  EXPECT_TRUE(
      tree.InsertPoint({{1.0, 2.0}, {3.0}}).IsInvalidArgument());  // bad dim
}

TEST(AcfTreeTest, InsertSummaryEquivalentToPoints) {
  auto layout = OnePartLayout();
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 1.0;
  AcfTree by_points(layout, 0, opts);
  AcfTree by_summary(layout, 0, opts);
  Rng rng(8);
  Acf batch(layout, 0);
  for (int i = 0; i < 20; ++i) {
    double x = 50 + rng.Uniform(-0.2, 0.2);
    ASSERT_TRUE(by_points.InsertPoint({{x}}).ok());
    batch.AddRow({{x}});
  }
  ASSERT_TRUE(by_summary.InsertSummary(std::move(batch)).ok());
  EXPECT_EQ(by_points.TotalMass(), by_summary.TotalMass());
  auto a = by_points.ExtractClusters();
  auto b = by_summary.ExtractClusters();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(a[0].Centroid()[0], b[0].Centroid()[0], 1e-9);
}

TEST(AcfTreeTest, InsertSummaryValidates) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  // Different layout object => rejected.
  Acf wrong(OnePartLayout(), 0);
  wrong.AddRow({{1.0}});
  EXPECT_TRUE(tree.InsertSummary(std::move(wrong)).IsInvalidArgument());
  // Empty summary => rejected.
  auto layout = OnePartLayout();
  AcfTree tree2(layout, 0, SmallTreeOptions());
  Acf empty(layout, 0);
  EXPECT_TRUE(tree2.InsertSummary(std::move(empty)).IsInvalidArgument());
}

TEST(AcfTreeTest, OutlierPagingAndReabsorption) {
  auto layout = OnePartLayout();
  AcfTreeOptions opts = SmallTreeOptions();
  opts.memory_budget_bytes = 12 << 10;
  opts.outlier_entry_min_n = 5;
  AcfTree tree(layout, 0, opts);
  Rng rng(9);
  // A dense population plus rare scattered singletons.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{rng.Gaussian(100, 1.0)}}).ok());
    if (i % 40 == 0) {
      ASSERT_TRUE(tree.InsertPoint({{rng.Uniform(1e5, 1e6)}}).ok());
    }
  }
  ASSERT_GT(tree.rebuild_count(), 0);
  ASSERT_TRUE(tree.FinishScan().ok());
  // Every point is accounted for: clusters + confirmed outliers.
  EXPECT_EQ(tree.TotalMass(), 2000 + 50);
}

TEST(AcfTreeTest, FinishScanAbsorbsCloseOutliers) {
  auto layout = OnePartLayout();
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 5.0;
  AcfTree tree(layout, 0, opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{50.0}}).ok());
  }
  // Fake a paged-out outlier near the big cluster by inserting a summary
  // after FinishScan-style reinsertion: exercise via a second tree.
  ASSERT_TRUE(tree.FinishScan().ok());
  EXPECT_TRUE(tree.outliers().empty());
  EXPECT_EQ(tree.TotalMass(), 100);
}

TEST(AcfTreeTest, NearestClusterIndexFindsContainingCluster) {
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 2.0;
  AcfTree tree(OnePartLayout(), 0, opts);
  Rng rng(10);
  for (int i = 0; i < 60; ++i) {
    double base = 10.0 * (i % 5);
    ASSERT_TRUE(tree.InsertPoint({{base + rng.Uniform(-0.3, 0.3)}}).ok());
  }
  auto clusters = tree.ExtractClusters();
  ASSERT_GE(clusters.size(), 5u);
  std::vector<double> probe = {20.0};
  auto idx = tree.NearestClusterIndex(probe);
  ASSERT_TRUE(idx.ok());
  EXPECT_NEAR(clusters[*idx].Centroid()[0], 20.0, 1.0);
}

TEST(AcfTreeTest, NearestClusterIndexEmptyTree) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  std::vector<double> probe = {1.0};
  EXPECT_TRUE(tree.NearestClusterIndex(probe).status().IsNotFound());
}

TEST(AcfTreeTest, DeterministicForIdenticalInput) {
  auto run = [] {
    AcfTreeOptions opts = SmallTreeOptions();
    opts.memory_budget_bytes = 32 << 10;
    AcfTree tree(OnePartLayout(), 0, opts);
    Rng rng(11);
    for (int i = 0; i < 1500; ++i) {
      EXPECT_TRUE(tree.InsertPoint({{rng.Uniform(0, 1e4)}}).ok());
    }
    std::vector<double> centroids;
    for (const auto& c : tree.ExtractClusters()) {
      centroids.push_back(c.Centroid()[0]);
    }
    return centroids;
  };
  EXPECT_EQ(run(), run());
}

TEST(AcfTreeTest, StatsReportInsertedPoints) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{double(i)}}).ok());
  }
  AcfTreeStats stats = tree.Stats();
  EXPECT_EQ(stats.points_inserted, 25);
  EXPECT_EQ(stats.rebuild_count, 0);
  EXPECT_GT(stats.approx_bytes, 0u);
}

TEST(AcfTreeTest, HigherThresholdYieldsFewerClusters) {
  auto count_clusters = [](double threshold) {
    AcfTreeOptions opts = SmallTreeOptions();
    opts.initial_threshold = threshold;
    AcfTree tree(OnePartLayout(), 0, opts);
    Rng rng(12);
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(tree.InsertPoint({{rng.Uniform(0, 100)}}).ok());
    }
    return tree.ExtractClusters().size();
  };
  size_t fine = count_clusters(0.5);
  size_t coarse = count_clusters(20.0);
  EXPECT_GT(fine, coarse);
}

TEST(AcfTreeTest, RejectsNonFiniteValues) {
  AcfTree tree(OnePartLayout(), 0, SmallTreeOptions());
  EXPECT_TRUE(tree.InsertPoint({{std::nan("")}}).IsInvalidArgument());
  EXPECT_TRUE(tree.InsertPoint(
                      {{std::numeric_limits<double>::infinity()}})
                  .IsInvalidArgument());
  // The tree is unchanged afterwards.
  EXPECT_EQ(tree.TotalMass(), 0);
  ASSERT_TRUE(tree.InsertPoint({{1.0}}).ok());
  EXPECT_EQ(tree.TotalMass(), 1);
}

TEST(AcfTreeTest, TwoDimensionalPartClusters) {
  // The paper's Latitude+Longitude case: one attribute set of dimension 2
  // with a Euclidean metric.
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{2, MetricKind::kEuclidean, "Lat+Lon"}};
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 2.0;
  AcfTree tree(layout, 0, opts);
  Rng rng(14);
  // Two spatial clusters.
  for (int i = 0; i < 100; ++i) {
    double lat = (i % 2 == 0) ? 40.0 : 52.0;
    double lon = (i % 2 == 0) ? -74.0 : 13.0;
    ASSERT_TRUE(tree.InsertPoint({{lat + rng.Uniform(-0.3, 0.3),
                                   lon + rng.Uniform(-0.3, 0.3)}})
                    .ok());
  }
  auto clusters = tree.ExtractClusters();
  ASSERT_EQ(clusters.size(), 2u);
  for (const auto& c : clusters) {
    EXPECT_EQ(c.n(), 50);
    auto box = c.BoundingBox(0);
    ASSERT_EQ(box.size(), 2u);
    EXPECT_LT(box[0].second - box[0].first, 1.0);
  }
}

TEST(AcfTreeTest, ManhattanMetricPart) {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{2, MetricKind::kManhattan, "XY"}};
  AcfTreeOptions opts = SmallTreeOptions();
  opts.initial_threshold = 3.0;
  AcfTree tree(layout, 0, opts);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{10.0, 10.0}}).ok());
    ASSERT_TRUE(tree.InsertPoint({{90.0, 90.0}}).ok());
  }
  EXPECT_EQ(tree.ExtractClusters().size(), 2u);
}

TEST(AcfTreeTest, DiscretePartClustersByValue) {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kDiscrete, "Color"}};
  AcfTree tree(layout, 0, SmallTreeOptions());  // threshold 0
  Rng rng(13);
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(tree.InsertPoint({{double(i % 3)}}).ok());
  }
  // Theorem 5.1: diameter-0 clusters are exactly the distinct values.
  auto clusters = tree.ExtractClusters();
  ASSERT_EQ(clusters.size(), 3u);
  for (const auto& c : clusters) {
    EXPECT_EQ(c.n(), 30);
    EXPECT_DOUBLE_EQ(c.Diameter(), 0.0);
  }
}

}  // namespace
}  // namespace dar
