# Empty compiler generated dependencies file for fig4_confidence_vs_distance.
# This may be replaced when dependencies are built.
