file(REMOVE_RECURSE
  "CMakeFiles/fig4_confidence_vs_distance.dir/fig4_confidence_vs_distance.cc.o"
  "CMakeFiles/fig4_confidence_vs_distance.dir/fig4_confidence_vs_distance.cc.o.d"
  "fig4_confidence_vs_distance"
  "fig4_confidence_vs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_confidence_vs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
