file(REMOVE_RECURSE
  "CMakeFiles/fig1_partitioning.dir/fig1_partitioning.cc.o"
  "CMakeFiles/fig1_partitioning.dir/fig1_partitioning.cc.o.d"
  "fig1_partitioning"
  "fig1_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
