# Empty dependencies file for fig1_partitioning.
# This may be replaced when dependencies are built.
