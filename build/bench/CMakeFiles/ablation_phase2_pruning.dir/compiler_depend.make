# Empty compiler generated dependencies file for ablation_phase2_pruning.
# This may be replaced when dependencies are built.
