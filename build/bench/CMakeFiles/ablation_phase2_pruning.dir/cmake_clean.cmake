file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase2_pruning.dir/ablation_phase2_pruning.cc.o"
  "CMakeFiles/ablation_phase2_pruning.dir/ablation_phase2_pruning.cc.o.d"
  "ablation_phase2_pruning"
  "ablation_phase2_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase2_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
