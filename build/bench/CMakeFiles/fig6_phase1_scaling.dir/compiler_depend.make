# Empty compiler generated dependencies file for fig6_phase1_scaling.
# This may be replaced when dependencies are built.
