file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase2_threshold.dir/ablation_phase2_threshold.cc.o"
  "CMakeFiles/ablation_phase2_threshold.dir/ablation_phase2_threshold.cc.o.d"
  "ablation_phase2_threshold"
  "ablation_phase2_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase2_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
