# Empty dependencies file for ablation_phase2_threshold.
# This may be replaced when dependencies are built.
