# Empty compiler generated dependencies file for fig2_rule_semantics.
# This may be replaced when dependencies are built.
