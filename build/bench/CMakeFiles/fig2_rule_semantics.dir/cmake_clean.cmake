file(REMOVE_RECURSE
  "CMakeFiles/fig2_rule_semantics.dir/fig2_rule_semantics.cc.o"
  "CMakeFiles/fig2_rule_semantics.dir/fig2_rule_semantics.cc.o.d"
  "fig2_rule_semantics"
  "fig2_rule_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rule_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
