# Empty dependencies file for sec72_phase2_stability.
# This may be replaced when dependencies are built.
