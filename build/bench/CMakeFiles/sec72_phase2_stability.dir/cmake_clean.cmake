file(REMOVE_RECURSE
  "CMakeFiles/sec72_phase2_stability.dir/sec72_phase2_stability.cc.o"
  "CMakeFiles/sec72_phase2_stability.dir/sec72_phase2_stability.cc.o.d"
  "sec72_phase2_stability"
  "sec72_phase2_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_phase2_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
