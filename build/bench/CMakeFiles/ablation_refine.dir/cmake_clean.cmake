file(REMOVE_RECURSE
  "CMakeFiles/ablation_refine.dir/ablation_refine.cc.o"
  "CMakeFiles/ablation_refine.dir/ablation_refine.cc.o.d"
  "ablation_refine"
  "ablation_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
