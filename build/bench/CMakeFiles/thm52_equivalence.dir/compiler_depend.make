# Empty compiler generated dependencies file for thm52_equivalence.
# This may be replaced when dependencies are built.
