file(REMOVE_RECURSE
  "CMakeFiles/thm52_equivalence.dir/thm52_equivalence.cc.o"
  "CMakeFiles/thm52_equivalence.dir/thm52_equivalence.cc.o.d"
  "thm52_equivalence"
  "thm52_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm52_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
