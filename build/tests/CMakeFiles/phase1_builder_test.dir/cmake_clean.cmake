file(REMOVE_RECURSE
  "CMakeFiles/phase1_builder_test.dir/phase1_builder_test.cc.o"
  "CMakeFiles/phase1_builder_test.dir/phase1_builder_test.cc.o.d"
  "phase1_builder_test"
  "phase1_builder_test.pdb"
  "phase1_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
