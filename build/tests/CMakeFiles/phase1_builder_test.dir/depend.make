# Empty dependencies file for phase1_builder_test.
# This may be replaced when dependencies are built.
