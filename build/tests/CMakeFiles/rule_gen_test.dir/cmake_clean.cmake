file(REMOVE_RECURSE
  "CMakeFiles/rule_gen_test.dir/rule_gen_test.cc.o"
  "CMakeFiles/rule_gen_test.dir/rule_gen_test.cc.o.d"
  "rule_gen_test"
  "rule_gen_test.pdb"
  "rule_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
