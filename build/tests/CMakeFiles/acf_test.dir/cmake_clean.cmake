file(REMOVE_RECURSE
  "CMakeFiles/acf_test.dir/acf_test.cc.o"
  "CMakeFiles/acf_test.dir/acf_test.cc.o.d"
  "acf_test"
  "acf_test.pdb"
  "acf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
