# Empty dependencies file for acf_test.
# This may be replaced when dependencies are built.
