
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qar/CMakeFiles/dar_qar.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dar_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/birch/CMakeFiles/dar_birch.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/dar_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/apriori/CMakeFiles/dar_apriori.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
