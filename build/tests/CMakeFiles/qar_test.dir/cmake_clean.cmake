file(REMOVE_RECURSE
  "CMakeFiles/qar_test.dir/qar_test.cc.o"
  "CMakeFiles/qar_test.dir/qar_test.cc.o.d"
  "qar_test"
  "qar_test.pdb"
  "qar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
