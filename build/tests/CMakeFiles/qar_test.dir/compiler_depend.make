# Empty compiler generated dependencies file for qar_test.
# This may be replaced when dependencies are built.
