# Empty dependencies file for acf_tree_test.
# This may be replaced when dependencies are built.
