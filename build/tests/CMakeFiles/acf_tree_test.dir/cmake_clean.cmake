file(REMOVE_RECURSE
  "CMakeFiles/acf_tree_test.dir/acf_tree_test.cc.o"
  "CMakeFiles/acf_tree_test.dir/acf_tree_test.cc.o.d"
  "acf_tree_test"
  "acf_tree_test.pdb"
  "acf_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acf_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
