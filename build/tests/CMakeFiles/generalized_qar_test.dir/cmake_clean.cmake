file(REMOVE_RECURSE
  "CMakeFiles/generalized_qar_test.dir/generalized_qar_test.cc.o"
  "CMakeFiles/generalized_qar_test.dir/generalized_qar_test.cc.o.d"
  "generalized_qar_test"
  "generalized_qar_test.pdb"
  "generalized_qar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_qar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
