file(REMOVE_RECURSE
  "CMakeFiles/clustering_graph_test.dir/clustering_graph_test.cc.o"
  "CMakeFiles/clustering_graph_test.dir/clustering_graph_test.cc.o.d"
  "clustering_graph_test"
  "clustering_graph_test.pdb"
  "clustering_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
