# Empty compiler generated dependencies file for clustering_graph_test.
# This may be replaced when dependencies are built.
