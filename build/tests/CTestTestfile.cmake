# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/cf_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/acf_test[1]_include.cmake")
include("/root/repo/build/tests/acf_tree_test[1]_include.cmake")
include("/root/repo/build/tests/apriori_test[1]_include.cmake")
include("/root/repo/build/tests/qar_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_graph_test[1]_include.cmake")
include("/root/repo/build/tests/rule_gen_test[1]_include.cmake")
include("/root/repo/build/tests/miner_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/generalized_qar_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/phase1_builder_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
