# Empty compiler generated dependencies file for adaptive_memory.
# This may be replaced when dependencies are built.
