# Empty compiler generated dependencies file for salary_partitioning.
# This may be replaced when dependencies are built.
