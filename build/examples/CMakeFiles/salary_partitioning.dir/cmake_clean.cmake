file(REMOVE_RECURSE
  "CMakeFiles/salary_partitioning.dir/salary_partitioning.cpp.o"
  "CMakeFiles/salary_partitioning.dir/salary_partitioning.cpp.o.d"
  "salary_partitioning"
  "salary_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
