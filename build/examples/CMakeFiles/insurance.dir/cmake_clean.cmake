file(REMOVE_RECURSE
  "CMakeFiles/insurance.dir/insurance.cpp.o"
  "CMakeFiles/insurance.dir/insurance.cpp.o.d"
  "insurance"
  "insurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
