file(REMOVE_RECURSE
  "CMakeFiles/dar_mine.dir/dar_mine.cpp.o"
  "CMakeFiles/dar_mine.dir/dar_mine.cpp.o.d"
  "dar_mine"
  "dar_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
