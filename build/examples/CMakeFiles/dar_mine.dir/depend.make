# Empty dependencies file for dar_mine.
# This may be replaced when dependencies are built.
