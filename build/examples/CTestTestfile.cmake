# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_insurance "/root/repo/build/examples/insurance" "3000")
set_tests_properties(example_insurance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_salary_partitioning "/root/repo/build/examples/salary_partitioning")
set_tests_properties(example_salary_partitioning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_memory "/root/repo/build/examples/adaptive_memory" "4000")
set_tests_properties(example_adaptive_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_advisor_workflow "/root/repo/build/examples/advisor_workflow" "3000")
set_tests_properties(example_advisor_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
