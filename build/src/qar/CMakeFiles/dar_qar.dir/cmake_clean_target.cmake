file(REMOVE_RECURSE
  "libdar_qar.a"
)
