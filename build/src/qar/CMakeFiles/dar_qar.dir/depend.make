# Empty dependencies file for dar_qar.
# This may be replaced when dependencies are built.
