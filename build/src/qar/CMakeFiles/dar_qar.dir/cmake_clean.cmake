file(REMOVE_RECURSE
  "CMakeFiles/dar_qar.dir/equidepth.cc.o"
  "CMakeFiles/dar_qar.dir/equidepth.cc.o.d"
  "CMakeFiles/dar_qar.dir/qar_miner.cc.o"
  "CMakeFiles/dar_qar.dir/qar_miner.cc.o.d"
  "libdar_qar.a"
  "libdar_qar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_qar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
