# Empty dependencies file for dar_birch.
# This may be replaced when dependencies are built.
