file(REMOVE_RECURSE
  "libdar_birch.a"
)
