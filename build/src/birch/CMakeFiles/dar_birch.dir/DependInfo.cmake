
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birch/acf.cc" "src/birch/CMakeFiles/dar_birch.dir/acf.cc.o" "gcc" "src/birch/CMakeFiles/dar_birch.dir/acf.cc.o.d"
  "/root/repo/src/birch/acf_tree.cc" "src/birch/CMakeFiles/dar_birch.dir/acf_tree.cc.o" "gcc" "src/birch/CMakeFiles/dar_birch.dir/acf_tree.cc.o.d"
  "/root/repo/src/birch/cf.cc" "src/birch/CMakeFiles/dar_birch.dir/cf.cc.o" "gcc" "src/birch/CMakeFiles/dar_birch.dir/cf.cc.o.d"
  "/root/repo/src/birch/metrics.cc" "src/birch/CMakeFiles/dar_birch.dir/metrics.cc.o" "gcc" "src/birch/CMakeFiles/dar_birch.dir/metrics.cc.o.d"
  "/root/repo/src/birch/refine.cc" "src/birch/CMakeFiles/dar_birch.dir/refine.cc.o" "gcc" "src/birch/CMakeFiles/dar_birch.dir/refine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/dar_relation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
