file(REMOVE_RECURSE
  "CMakeFiles/dar_birch.dir/acf.cc.o"
  "CMakeFiles/dar_birch.dir/acf.cc.o.d"
  "CMakeFiles/dar_birch.dir/acf_tree.cc.o"
  "CMakeFiles/dar_birch.dir/acf_tree.cc.o.d"
  "CMakeFiles/dar_birch.dir/cf.cc.o"
  "CMakeFiles/dar_birch.dir/cf.cc.o.d"
  "CMakeFiles/dar_birch.dir/metrics.cc.o"
  "CMakeFiles/dar_birch.dir/metrics.cc.o.d"
  "CMakeFiles/dar_birch.dir/refine.cc.o"
  "CMakeFiles/dar_birch.dir/refine.cc.o.d"
  "libdar_birch.a"
  "libdar_birch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_birch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
