file(REMOVE_RECURSE
  "CMakeFiles/dar_core.dir/advisor.cc.o"
  "CMakeFiles/dar_core.dir/advisor.cc.o.d"
  "CMakeFiles/dar_core.dir/clustering_graph.cc.o"
  "CMakeFiles/dar_core.dir/clustering_graph.cc.o.d"
  "CMakeFiles/dar_core.dir/generalized_qar.cc.o"
  "CMakeFiles/dar_core.dir/generalized_qar.cc.o.d"
  "CMakeFiles/dar_core.dir/miner.cc.o"
  "CMakeFiles/dar_core.dir/miner.cc.o.d"
  "CMakeFiles/dar_core.dir/model.cc.o"
  "CMakeFiles/dar_core.dir/model.cc.o.d"
  "CMakeFiles/dar_core.dir/phase1_builder.cc.o"
  "CMakeFiles/dar_core.dir/phase1_builder.cc.o.d"
  "CMakeFiles/dar_core.dir/report.cc.o"
  "CMakeFiles/dar_core.dir/report.cc.o.d"
  "CMakeFiles/dar_core.dir/rule_gen.cc.o"
  "CMakeFiles/dar_core.dir/rule_gen.cc.o.d"
  "CMakeFiles/dar_core.dir/rules.cc.o"
  "CMakeFiles/dar_core.dir/rules.cc.o.d"
  "libdar_core.a"
  "libdar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
