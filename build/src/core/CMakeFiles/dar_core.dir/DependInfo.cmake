
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/dar_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/clustering_graph.cc" "src/core/CMakeFiles/dar_core.dir/clustering_graph.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/clustering_graph.cc.o.d"
  "/root/repo/src/core/generalized_qar.cc" "src/core/CMakeFiles/dar_core.dir/generalized_qar.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/generalized_qar.cc.o.d"
  "/root/repo/src/core/miner.cc" "src/core/CMakeFiles/dar_core.dir/miner.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/miner.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/dar_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/model.cc.o.d"
  "/root/repo/src/core/phase1_builder.cc" "src/core/CMakeFiles/dar_core.dir/phase1_builder.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/phase1_builder.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/dar_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/report.cc.o.d"
  "/root/repo/src/core/rule_gen.cc" "src/core/CMakeFiles/dar_core.dir/rule_gen.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/rule_gen.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/dar_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/dar_core.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/dar_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/birch/CMakeFiles/dar_birch.dir/DependInfo.cmake"
  "/root/repo/build/src/apriori/CMakeFiles/dar_apriori.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
