# Empty dependencies file for dar_core.
# This may be replaced when dependencies are built.
