file(REMOVE_RECURSE
  "libdar_core.a"
)
