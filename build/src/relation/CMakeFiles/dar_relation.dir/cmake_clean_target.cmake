file(REMOVE_RECURSE
  "libdar_relation.a"
)
