file(REMOVE_RECURSE
  "CMakeFiles/dar_relation.dir/csv.cc.o"
  "CMakeFiles/dar_relation.dir/csv.cc.o.d"
  "CMakeFiles/dar_relation.dir/metric.cc.o"
  "CMakeFiles/dar_relation.dir/metric.cc.o.d"
  "CMakeFiles/dar_relation.dir/partition.cc.o"
  "CMakeFiles/dar_relation.dir/partition.cc.o.d"
  "CMakeFiles/dar_relation.dir/relation.cc.o"
  "CMakeFiles/dar_relation.dir/relation.cc.o.d"
  "CMakeFiles/dar_relation.dir/schema.cc.o"
  "CMakeFiles/dar_relation.dir/schema.cc.o.d"
  "libdar_relation.a"
  "libdar_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
