# Empty compiler generated dependencies file for dar_relation.
# This may be replaced when dependencies are built.
