file(REMOVE_RECURSE
  "libdar_apriori.a"
)
