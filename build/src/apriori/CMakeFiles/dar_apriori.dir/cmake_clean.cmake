file(REMOVE_RECURSE
  "CMakeFiles/dar_apriori.dir/apriori.cc.o"
  "CMakeFiles/dar_apriori.dir/apriori.cc.o.d"
  "CMakeFiles/dar_apriori.dir/itemset.cc.o"
  "CMakeFiles/dar_apriori.dir/itemset.cc.o.d"
  "libdar_apriori.a"
  "libdar_apriori.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_apriori.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
