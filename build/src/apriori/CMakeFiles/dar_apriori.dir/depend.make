# Empty dependencies file for dar_apriori.
# This may be replaced when dependencies are built.
