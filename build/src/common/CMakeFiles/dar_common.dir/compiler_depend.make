# Empty compiler generated dependencies file for dar_common.
# This may be replaced when dependencies are built.
