file(REMOVE_RECURSE
  "libdar_common.a"
)
