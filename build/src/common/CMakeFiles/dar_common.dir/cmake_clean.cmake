file(REMOVE_RECURSE
  "CMakeFiles/dar_common.dir/status.cc.o"
  "CMakeFiles/dar_common.dir/status.cc.o.d"
  "CMakeFiles/dar_common.dir/str_util.cc.o"
  "CMakeFiles/dar_common.dir/str_util.cc.o.d"
  "libdar_common.a"
  "libdar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
