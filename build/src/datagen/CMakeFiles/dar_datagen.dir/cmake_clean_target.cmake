file(REMOVE_RECURSE
  "libdar_datagen.a"
)
