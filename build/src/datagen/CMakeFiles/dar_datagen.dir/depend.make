# Empty dependencies file for dar_datagen.
# This may be replaced when dependencies are built.
