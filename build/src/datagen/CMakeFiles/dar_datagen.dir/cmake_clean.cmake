file(REMOVE_RECURSE
  "CMakeFiles/dar_datagen.dir/fixtures.cc.o"
  "CMakeFiles/dar_datagen.dir/fixtures.cc.o.d"
  "CMakeFiles/dar_datagen.dir/planted.cc.o"
  "CMakeFiles/dar_datagen.dir/planted.cc.o.d"
  "libdar_datagen.a"
  "libdar_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dar_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
