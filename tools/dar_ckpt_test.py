#!/usr/bin/env python3
"""Golden-output test for tools/dar_ckpt.py.

Generates the deterministic fixture checkpoint with gen_ckpt_fixture (path
passed as argv[1] by ctest), runs the inspector over it with --no-floats,
and diffs stdout against tools/testdata/expected_ckpt_output.txt — pinning
the Python wire-format mirror to the C++ codecs. Also asserts the failure
paths: a flipped byte, a truncation and a non-checkpoint file must all
exit 1 with a diagnostic on stderr.
"""

import difflib
import pathlib
import subprocess
import sys
import tempfile

TOOLS = pathlib.Path(__file__).resolve().parent


def run_ckpt(args):
    return subprocess.run(
        [sys.executable, str(TOOLS / "dar_ckpt.py")] + args,
        capture_output=True, text=True)


def main():
    if len(sys.argv) != 2:
        print("usage: dar_ckpt_test.py <path-to-gen_ckpt_fixture-binary>")
        return 2
    generator = sys.argv[1]
    expected_path = TOOLS / "testdata" / "expected_ckpt_output.txt"

    with tempfile.TemporaryDirectory() as tmp:
        fixture = pathlib.Path(tmp) / "fixture.darckpt"
        gen = subprocess.run([generator, str(fixture)],
                             capture_output=True, text=True)
        if gen.returncode != 0:
            print(f"FAIL: fixture generator exited {gen.returncode}")
            print(gen.stdout + gen.stderr)
            return 1

        # Golden structural output (floats masked: their *presence* is part
        # of the wire layout under test, their values are not).
        proc = run_ckpt(["--no-floats", str(fixture)])
        if proc.returncode != 0:
            print(f"FAIL: inspector exited {proc.returncode} on a valid "
                  "checkpoint")
            print(proc.stdout + proc.stderr)
            return 1
        expected = expected_path.read_text()
        if proc.stdout != expected:
            print("FAIL: inspector output differs from golden file:")
            sys.stdout.writelines(difflib.unified_diff(
                expected.splitlines(keepends=True),
                proc.stdout.splitlines(keepends=True),
                fromfile="expected_ckpt_output.txt", tofile="actual"))
            return 1

        data = fixture.read_bytes()

        # A flipped payload byte must trip a CRC check.
        corrupt = pathlib.Path(tmp) / "corrupt.darckpt"
        flipped = bytearray(data)
        flipped[len(flipped) // 2] ^= 0x01
        corrupt.write_bytes(bytes(flipped))
        proc = run_ckpt([str(corrupt)])
        if proc.returncode != 1 or "CRC" not in proc.stderr:
            print("FAIL: flipped byte not reported as a CRC failure "
                  f"(exit {proc.returncode}): {proc.stderr}")
            return 1

        # A truncation must be reported, not crash.
        corrupt.write_bytes(data[:len(data) - 10])
        proc = run_ckpt([str(corrupt)])
        if proc.returncode != 1:
            print(f"FAIL: truncated file accepted (exit {proc.returncode})")
            return 1

        # A non-checkpoint file must be refused by magic.
        proc = run_ckpt([str(TOOLS / "dar_ckpt.py")])
        if proc.returncode != 1 or "magic" not in proc.stderr:
            print("FAIL: non-checkpoint file not refused by magic "
                  f"(exit {proc.returncode}): {proc.stderr}")
            return 1

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
