#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Checked invariants (library code = everything under src/):

  header-guard     every header under src/ is guarded by
                   DAR_<PATH>_H_ derived from its path (src/birch/acf.h ->
                   DAR_BIRCH_ACF_H_), with a matching #define and a trailing
                   `#endif  // GUARD` comment.
  no-iostream      no std::cout / std::cerr / std::abort / abort() in
                   library code outside common/logging.h; the library
                   reports failures through Status/Result and fatal checks
                   through the DAR_CHECK macros.
  no-naked-new     no `new` / `delete` expressions in library code; use
                   std::make_unique / std::make_shared and containers
                   (`= delete` member declarations are fine).
  no-unseeded-rng  no rand()/srand(), std::random_device, or direct
                   std::mt19937 outside common/random.h; all randomness
                   flows through dar::Rng with an explicit seed so every
                   run is reproducible.
  no-raw-mutex     no std::mutex / std::shared_mutex / std::lock_guard /
                   std::unique_lock / std::scoped_lock / std::shared_lock /
                   std::condition_variable outside common/mutex.h; library
                   locking goes through dar::Mutex & friends, whose Clang
                   thread-safety capability annotations let the compiler
                   prove the locking discipline (raw std primitives are
                   invisible to the analysis).
  no-detached-thread
                   no std::thread::detach() in library code; a detached
                   thread outlives Stop()/join and escapes every shutdown
                   invariant the thread-safety annotations document. Keep
                   the handle and join it.
  no-lingering-deprecated
                   no [[deprecated]] symbols in library code outside
                   common/: this repo deletes an API in the release after
                   its replacement ships (migrating all callers in the same
                   change) instead of letting shims accrete. common/ is
                   allowlisted so a shared DAR_DEPRECATED macro could live
                   there during a migration window.
  test-registered  every tests/*_test.cc is registered with dar_add_test()
                   in tests/CMakeLists.txt (an unregistered test silently
                   never runs).

Usage: tools/dar_lint.py [--root REPO_ROOT]

Prints one `path:line: [rule] message` per finding (sorted, deterministic)
and exits 1 when anything is found, 0 on a clean tree.
"""

import argparse
import pathlib
import re
import sys

# Files whose job is exactly the thing the rule bans elsewhere.
LOGGING_ALLOWLIST = {"src/common/logging.h"}
RNG_ALLOWLIST = {"src/common/random.h"}
MUTEX_ALLOWLIST = {"src/common/mutex.h"}
DEPRECATED_ALLOWLIST_PREFIX = "src/common/"

IOSTREAM_RE = re.compile(r"std::cout|std::cerr|(?<![\w:.])(?:std::)?abort\s*\(")
NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_*(]|(?<![\w.])delete\[\]")
RNG_RE = re.compile(
    r"(?<![\w:.])(?:std::)?(?:rand|srand)\s*\(|std::random_device|std::mt19937")
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b")
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
DEPRECATED_RE = re.compile(r"\[\[\s*(?:\w+\s*::\s*)?deprecated\b")
GUARD_IF_RE = re.compile(r"^#ifndef\s+(\S+)\s*$")
GUARD_DEF_RE = re.compile(r"^#define\s+(\S+)\s*$")
GUARD_END_RE = re.compile(r"^#endif\s*//\s*(\S+)\s*$")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line breaks
    so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    stem = re.sub(r"[./]", "_", str(rel_path.with_suffix("")))
    return f"DAR_{stem.upper()}_H_"


def check_header_guard(path, rel, text, findings):
    guard = expected_guard(rel.relative_to("src"))
    lines = text.splitlines()
    ifndef_line = None
    for i, line in enumerate(lines):
        if line.strip() and not line.lstrip().startswith("//"):
            ifndef_line = i
            break
    if ifndef_line is None:
        findings.append((rel, 1, "header-guard", f"empty header, expected guard {guard}"))
        return
    m = GUARD_IF_RE.match(lines[ifndef_line].strip())
    if not m or m.group(1) != guard:
        findings.append((rel, ifndef_line + 1, "header-guard",
                         f"first directive must be '#ifndef {guard}'"))
        return
    if ifndef_line + 1 >= len(lines):
        findings.append((rel, ifndef_line + 1, "header-guard",
                         f"missing '#define {guard}'"))
        return
    m = GUARD_DEF_RE.match(lines[ifndef_line + 1].strip())
    if not m or m.group(1) != guard:
        findings.append((rel, ifndef_line + 2, "header-guard",
                         f"second directive must be '#define {guard}'"))
        return
    for i in range(len(lines) - 1, -1, -1):
        if lines[i].strip():
            m = GUARD_END_RE.match(lines[i].strip())
            if not m or m.group(1) != guard:
                findings.append((rel, i + 1, "header-guard",
                                 f"header must end with '#endif  // {guard}'"))
            return


def check_code_rules(rel, text, findings):
    rel_str = str(rel)
    code = strip_comments_and_strings(text)
    for lineno, line in enumerate(code.splitlines(), start=1):
        if rel_str not in LOGGING_ALLOWLIST:
            if IOSTREAM_RE.search(line):
                findings.append((rel, lineno, "no-iostream",
                                 "std::cout/std::cerr/abort are reserved for "
                                 "common/logging.h; return a Status or use "
                                 "DAR_CHECK"))
        if NEW_RE.search(line) or DELETE_RE.search(line):
            findings.append((rel, lineno, "no-naked-new",
                             "use std::make_unique/std::make_shared or a "
                             "container instead of new/delete"))
        if rel_str not in RNG_ALLOWLIST and RNG_RE.search(line):
            findings.append((rel, lineno, "no-unseeded-rng",
                             "use dar::Rng (common/random.h) with an "
                             "explicit seed"))
        if rel_str not in MUTEX_ALLOWLIST and RAW_MUTEX_RE.search(line):
            findings.append((rel, lineno, "no-raw-mutex",
                             "use dar::Mutex/dar::SharedMutex with "
                             "dar::MutexLock/ReaderLock/CondVar "
                             "(common/mutex.h) so the Clang thread-safety "
                             "analysis can check the locking"))
        if DETACH_RE.search(line):
            findings.append((rel, lineno, "no-detached-thread",
                             "detached threads escape every shutdown/join "
                             "path; keep the std::thread handle and join "
                             "it (see RuleServer::ReapFinished)"))
        if (not rel_str.startswith(DEPRECATED_ALLOWLIST_PREFIX)
                and DEPRECATED_RE.search(line)):
            findings.append((rel, lineno, "no-lingering-deprecated",
                             "delete the deprecated symbol and migrate its "
                             "callers instead of shipping a shim; this repo "
                             "removes an API in the release after its "
                             "replacement lands"))


def check_tests_registered(root, findings):
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.is_file():
        return
    registered = set(re.findall(r"dar_add_test\(\s*(\w+)", cmake.read_text()))
    for test in sorted((root / "tests").glob("*_test.cc")):
        if test.stem not in registered:
            findings.append((test.relative_to(root), 1, "test-registered",
                             f"add 'dar_add_test({test.stem})' to "
                             "tests/CMakeLists.txt or the test never runs"))


def run(root):
    findings = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc") or not path.is_file():
            continue
        rel = path.relative_to(root)
        text = path.read_text()
        if path.suffix == ".h":
            check_header_guard(path, rel, text, findings)
        check_code_rules(rel, text, findings)
    check_tests_registered(root, findings)
    findings.sort(key=lambda f: (str(f[0]), f[1], f[2]))
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    return 1 if findings else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root to lint (default: this repo)")
    args = parser.parse_args()
    status = run(args.root.resolve())
    if status == 0:
        print("dar_lint: clean", file=sys.stderr)
    sys.exit(status)


if __name__ == "__main__":
    main()
