#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json files written by bench_main.

Expected document shape (schema_version 1):

  {
    "schema_version": 1,
    "suite": "phase1" | "phase2" | "stream" | "persist" | "serve"
             | "merge" | "quality" | "graph" | "micro",
    "smoke": bool,
    "seed": int,
    "runs": [
      {
        "name": str,                  # non-empty, unique within the file
        "params": {str: number, ...},
        "timings": {str: number, ...},   # optional (--no-timings omits it)
        "telemetry": {                   # deterministic snapshot export
          "counters": {name: {"unit": str, "value": int}, ...},
          "gauges": {name: {"unit": str, "value": number|null}, ...},
          "histograms": {name: {"unit": str, "bounds": [number...],
                                "counts": [int...],  # len(bounds) + 1
                                "count": int, "sum": number|null}, ...}
        }
      }, ...
    ]
  }

The telemetry objects are the *deterministic view* (no seconds-valued
metrics), so two files produced with the same seed and --no-timings must
be byte-identical regardless of thread count; this script only checks
shape, the byte comparison is a plain diff/cmp in CI.

The "serve" suite carries extra invariants beyond shape: every run must
record zero dropped and zero cross-generation-inconsistent responses
from >= 8 clients across >= 3 snapshot hot-swaps, and (when timings are
present) QPS plus ordered p50/p99/p999 latency percentiles.

The "merge" suite likewise: every run must name its shard count
(params.num_shards >= 1) and its telemetry must record exactly that many
merged checkpoints (counters["merge.checkpoints"]) — a run that silently
merged fewer shards than it claims is a broken benchmark, not a slow one.

The "quality" suite: every run must keep pruned <= total with finite
score extrema, the stationary control (params.drift_injected == 0) must
report zero born/died/drifted rules, and the drift-injected run must
flag at least one change — a drift detector that fires on a stationary
stream (or misses a planted mean shift) is wrong, not slow.

The "graph" suite (the dar::graph clique engine on adversarial graphs):
every run must report its component count (params.components >= 1) and
both truncation flags (params.clique_cap_truncated /
params.step_budget_truncated, each 0 or 1); across the suite each flag
must fire at least once (the Moon-Moser budget runs exist to prove
truncation stays loud); and the oracle runs must report zero
dropped_cliques and zero spurious_cliques against the brute-force
maximal-clique oracle — a single missing or invented clique is a
correctness bug in the engine, not noise.

Usage: tools/check_bench_json.py FILE [FILE...]
Prints one `file: message` per violation and exits 1 when anything is
found, 0 when every file is schema-valid. Stdlib only.
"""

import json
import math
import numbers
import sys

VALID_SUITES = {"phase1", "phase2", "stream", "persist", "serve", "merge",
                "quality", "graph", "micro"}
VALID_UNITS = {"count", "seconds", "bytes"}


def is_number(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def check_scalar_map(errors, path, obj):
    if not isinstance(obj, dict):
        errors.append(f"{path}: expected object, got {type(obj).__name__}")
        return
    for key, value in obj.items():
        if value is not None and not is_number(value):
            errors.append(f"{path}.{key}: expected number, got {value!r}")


def check_telemetry(errors, path, telemetry):
    if not isinstance(telemetry, dict):
        errors.append(f"{path}: expected object")
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in telemetry:
            errors.append(f"{path}: missing '{section}'")
    for name, counter in telemetry.get("counters", {}).items():
        where = f"{path}.counters.{name}"
        if counter.get("unit") not in VALID_UNITS:
            errors.append(f"{where}: bad unit {counter.get('unit')!r}")
        if counter.get("unit") == "seconds":
            errors.append(f"{where}: seconds-valued metric in the "
                          "deterministic view")
        if not is_int(counter.get("value")):
            errors.append(f"{where}: value must be an integer")
    for name, gauge in telemetry.get("gauges", {}).items():
        where = f"{path}.gauges.{name}"
        if gauge.get("unit") not in VALID_UNITS:
            errors.append(f"{where}: bad unit {gauge.get('unit')!r}")
        if gauge.get("unit") == "seconds":
            errors.append(f"{where}: seconds-valued metric in the "
                          "deterministic view")
        if gauge.get("value") is not None and not is_number(gauge["value"]):
            errors.append(f"{where}: value must be a number or null")
    for name, hist in telemetry.get("histograms", {}).items():
        where = f"{path}.histograms.{name}"
        if hist.get("unit") not in VALID_UNITS:
            errors.append(f"{where}: bad unit {hist.get('unit')!r}")
        if hist.get("unit") == "seconds":
            errors.append(f"{where}: seconds-valued metric in the "
                          "deterministic view")
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not all(
                is_number(b) for b in bounds):
            errors.append(f"{where}: bounds must be a number array")
            continue
        if sorted(bounds) != bounds:
            errors.append(f"{where}: bounds must be ascending")
        if not isinstance(counts, list) or not all(
                is_int(c) for c in counts):
            errors.append(f"{where}: counts must be an integer array")
            continue
        if len(counts) != len(bounds) + 1:
            errors.append(f"{where}: expected {len(bounds) + 1} counts "
                          f"(bounds + overflow), got {len(counts)}")
        if not is_int(hist.get("count")):
            errors.append(f"{where}: count must be an integer")
        elif hist["count"] != sum(counts):
            errors.append(f"{where}: count {hist['count']} != "
                          f"sum(counts) {sum(counts)}")


def check_serve_run(errors, where, run):
    """Serve-suite invariants: zero dropped / inconsistent responses from
    >= 8 clients across >= 3 hot-swaps, and ordered latency percentiles."""
    params = run.get("params")
    if not isinstance(params, dict):
        return  # shape error already reported
    for key, want in (("dropped_responses", 0), ("inconsistent_responses", 0)):
        value = params.get(key)
        if value is None:
            errors.append(f"{where}.params: missing '{key}'")
        elif value != want:
            errors.append(f"{where}.params.{key}: must be {want}, "
                          f"got {value!r}")
    for key, floor in (("clients", 8), ("swaps", 3)):
        value = params.get(key)
        if value is None:
            errors.append(f"{where}.params: missing '{key}'")
        elif not is_number(value) or value < floor:
            errors.append(f"{where}.params.{key}: must be >= {floor}, "
                          f"got {value!r}")
    timings = run.get("timings")
    if timings is None:  # --no-timings omits the whole object
        return
    if not isinstance(timings, dict):
        return
    for key in ("qps", "p50_seconds", "p99_seconds", "p999_seconds"):
        if not is_number(timings.get(key)):
            errors.append(f"{where}.timings: missing numeric '{key}'")
    p50 = timings.get("p50_seconds")
    p99 = timings.get("p99_seconds")
    p999 = timings.get("p999_seconds")
    if all(is_number(v) for v in (p50, p99, p999)) and not (
            p50 <= p99 <= p999):
        errors.append(f"{where}.timings: percentiles must be ordered "
                      f"(p50 {p50} <= p99 {p99} <= p999 {p999})")


def check_merge_run(errors, where, run):
    """Merge-suite invariants: the shard count is named and the telemetry
    actually merged that many shard checkpoints."""
    params = run.get("params")
    if not isinstance(params, dict):
        return  # shape error already reported
    num_shards = params.get("num_shards")
    if num_shards is None:
        errors.append(f"{where}.params: missing 'num_shards'")
        return
    if not is_number(num_shards) or num_shards < 1:
        errors.append(f"{where}.params.num_shards: must be >= 1, "
                      f"got {num_shards!r}")
        return
    telemetry = run.get("telemetry")
    if not isinstance(telemetry, dict):
        return  # shape error already reported
    counters = telemetry.get("counters", {})
    merged = counters.get("merge.checkpoints", {})
    if not isinstance(merged, dict) or merged.get("value") != num_shards:
        errors.append(f"{where}.telemetry: counters['merge.checkpoints'] "
                      f"must equal params.num_shards ({num_shards:g}), "
                      f"got {merged.get('value') if isinstance(merged, dict) else merged!r}")


def check_quality_run(errors, where, run):
    """Quality-suite invariants: pruning never invents rules, scores stay
    finite, and drift classification matches the planted ground truth —
    zero changes on the stationary control, at least one when a cluster-
    mean shift was injected."""
    params = run.get("params")
    if not isinstance(params, dict):
        return  # shape error already reported
    for key in ("drift_injected", "rules_total", "rules_pruned",
                "born", "died", "drifted", "min_score", "max_score"):
        if not is_number(params.get(key)):
            errors.append(f"{where}.params: missing numeric '{key}'")
    total = params.get("rules_total")
    pruned = params.get("rules_pruned")
    if is_number(total) and is_number(pruned) and not (0 <= pruned <= total):
        errors.append(f"{where}.params: rules_pruned {pruned!r} must be in "
                      f"[0, rules_total {total!r}]")
    for key in ("min_score", "max_score"):
        value = params.get(key)
        # json.load maps the JSON literals NaN/Infinity to the float
        # specials, and a writer bug could also smuggle them in as huge
        # doubles; math.isfinite catches both.
        if is_number(value) and not math.isfinite(value):
            errors.append(f"{where}.params.{key}: must be finite, "
                          f"got {value!r}")
    changes = [params.get(k) for k in ("born", "died", "drifted")]
    if not all(is_number(v) for v in changes):
        return
    injected = params.get("drift_injected")
    if injected == 0 and any(v != 0 for v in changes):
        errors.append(f"{where}.params: stationary control must report "
                      f"zero born/died/drifted, got {changes}")
    if is_number(injected) and injected != 0 and sum(changes) < 1:
        errors.append(f"{where}.params: drift was injected but no rule "
                      "was born, died, or drifted")


def check_graph_run(errors, where, run):
    """Graph-suite invariants: component count and both truncation flags
    are always reported, and the oracle runs agree exactly with the
    brute-force maximal-clique oracle."""
    params = run.get("params")
    if not isinstance(params, dict):
        return  # shape error already reported
    components = params.get("components")
    if components is None:
        errors.append(f"{where}.params: missing 'components'")
    elif not is_number(components) or components < 1:
        errors.append(f"{where}.params.components: must be >= 1, "
                      f"got {components!r}")
    for key in ("clique_cap_truncated", "step_budget_truncated"):
        flag = params.get(key)
        if flag is None:
            errors.append(f"{where}.params: missing '{key}'")
        elif flag not in (0, 1):
            errors.append(f"{where}.params.{key}: must be 0 or 1, "
                          f"got {flag!r}")
    if isinstance(run.get("name"), str) and "oracle" in run["name"]:
        for key in ("oracle_cliques", "dropped_cliques", "spurious_cliques"):
            if not is_number(params.get(key)):
                errors.append(f"{where}.params: missing numeric '{key}'")
        for key in ("dropped_cliques", "spurious_cliques"):
            value = params.get(key)
            if is_number(value) and value != 0:
                errors.append(f"{where}.params.{key}: must be 0 "
                              f"(engine disagrees with the oracle), "
                              f"got {value!r}")


def check_graph_suite(errors, runs):
    """Across the whole graph suite, each truncation flag must have fired
    at least once — the adversarial budget runs exist to prove truncation
    is loud, and a suite where neither flag ever fires no longer tests it."""
    for key in ("clique_cap_truncated", "step_budget_truncated"):
        fired = any(
            isinstance(run, dict) and isinstance(run.get("params"), dict)
            and run["params"].get(key) == 1 for run in runs)
        if not fired:
            errors.append(f"runs: no run fired params.{key} — the "
                          "adversarial budget runs are missing")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema_version") != 1:
        errors.append(f"schema_version must be 1, "
                      f"got {doc.get('schema_version')!r}")
    if doc.get("suite") not in VALID_SUITES:
        errors.append(f"suite must be one of {sorted(VALID_SUITES)}, "
                      f"got {doc.get('suite')!r}")
    if not isinstance(doc.get("smoke"), bool):
        errors.append("smoke must be a boolean")
    if not is_int(doc.get("seed")):
        errors.append("seed must be an integer")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty array")
        return errors
    names = set()
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where}: expected object")
            continue
        name = run.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: name must be a non-empty string")
        elif name in names:
            errors.append(f"{where}: duplicate name {name!r}")
        else:
            names.add(name)
        if "params" not in run:
            errors.append(f"{where}: missing 'params'")
        else:
            check_scalar_map(errors, f"{where}.params", run["params"])
        if "timings" in run:  # optional: --no-timings omits it
            check_scalar_map(errors, f"{where}.timings", run["timings"])
        if "telemetry" not in run:
            errors.append(f"{where}: missing 'telemetry'")
        else:
            check_telemetry(errors, f"{where}.telemetry", run["telemetry"])
        if doc.get("suite") == "serve":
            check_serve_run(errors, where, run)
        if doc.get("suite") == "merge":
            check_merge_run(errors, where, run)
        if doc.get("suite") == "quality":
            check_quality_run(errors, where, run)
        if doc.get("suite") == "graph":
            check_graph_run(errors, where, run)
    if doc.get("suite") == "graph":
        check_graph_suite(errors, runs)
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        for message in errors:
            print(f"{path}: {message}")
        if errors:
            failed = True
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
