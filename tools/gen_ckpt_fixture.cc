// Generates the deterministic checkpoint fixture for tools/dar_ckpt_test.py.
//
// The workload is tiny and integer-valued (two planted patterns over two
// interval attributes and one nominal attribute), so every serialized
// double — CF sums, thresholds, centroids — is an exact binary value and
// the checkpoint's *structure* (cluster counts, tree shapes, rule counts)
// is identical on every IEEE-754 platform. tools/dar_ckpt.py is run over
// the result with --no-floats and diffed against
// tools/testdata/expected_ckpt_output.txt.

#include <iostream>
#include <string>
#include <vector>

#include "core/session.h"
#include "relation/relation.h"
#include "stream/streaming_miner.h"

namespace {

// Tool-style error handling: print and exit nonzero (the library's Status
// machinery reports the reason).
template <typename T>
T OrDie(dar::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << "gen_ckpt_fixture: " << what << ": "
              << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

void CheckOk(const dar::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "gen_ckpt_fixture: " << what << ": " << status.ToString()
              << "\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: gen_ckpt_fixture <output-checkpoint-path>\n";
    return 2;
  }
  const std::string path = argv[1];

  auto schema = OrDie(
      dar::Schema::Make({{"X", dar::AttributeKind::kInterval},
                         {"Y", dar::AttributeKind::kInterval},
                         {"Color", dar::AttributeKind::kNominal}}),
      "schema");
  auto partition = OrDie(
      dar::AttributePartition::Make(
          schema, {{{"X"}, dar::MetricKind::kEuclidean},
                   {{"Y"}, dar::MetricKind::kEuclidean},
                   {{"Color"}, dar::MetricKind::kDiscrete}}),
      "partition");

  // Labels "low"/"high" encode to 0.0/1.0; the dictionary rides along in
  // the checkpoint so the inspector's dictionaries section is non-empty.
  std::vector<dar::Dictionary> dictionaries(1);
  const double low = dictionaries[0].Encode("low");
  const double high = dictionaries[0].Encode("high");

  // Two clean co-occurrence patterns, 32 tuples each, all values exact
  // small integers: (X near 0, Y near 64, low) and (X near 64, Y near 0,
  // high).
  dar::Relation rel(schema);
  for (int i = 0; i < 32; ++i) {
    const double jitter = i % 4;  // 0, 1, 2, 3
    CheckOk(rel.AppendRow({jitter, 64.0 + jitter, low}), "append row");
    CheckOk(rel.AppendRow({64.0 + jitter, jitter, high}), "append row");
  }

  dar::DarConfig config;
  config.frequency_fraction = 0.25;
  config.initial_diameters = {8.0, 8.0, 0.5};
  config.degree_threshold = 16.0;

  auto session = OrDie(
      dar::Session::Builder().WithConfig(config).Build(), "session");
  dar::StreamConfig stream_config;
  stream_config.remine_every_rows = 0;  // publish manually below
  stream_config.shard_id = 3;  // pins the shards section in the golden
  auto stream = OrDie(session.OpenStream(schema, partition, stream_config),
                      "open stream");
  CheckOk(stream->Ingest(rel), "ingest");
  CheckOk(stream->Remine().status(), "remine");
  CheckOk(session.SaveCheckpoint(*stream, path, dictionaries),
          "save checkpoint");
  return 0;
}
