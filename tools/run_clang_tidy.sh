#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every library
# source file, using the compile database of an existing build directory.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# The build directory must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the `lint` CMake target does this for
# you). Exits 0 and prints a notice when clang-tidy is not installed, so the
# target degrades gracefully on machines without LLVM tooling; CI installs
# clang-tidy and treats every finding as an error (WarningsAsErrors: '*').
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

# Header-coverage gate (no LLVM needed, so it always runs): clang-tidy and
# the static analyzer only visit translation units, so a header that
# nothing includes is invisible to every compile-time check — including
# the thread-safety annotations. Every header under src/ must be included
# from at least one .cc/.h in the tree.
cd "${repo_root}"
uncovered=()
while IFS= read -r header; do
  rel="${header#src/}"
  # src/dar.h is the published umbrella header: consumed by downstream
  # users, intentionally not by this repo's own sources.
  if [[ "${rel}" == "dar.h" ]]; then
    continue
  fi
  if ! grep -rqF "#include \"${rel}\"" src tests bench examples tools \
       --include='*.cc' --include='*.h'; then
    uncovered+=("${header}")
  fi
done < <(find src -name '*.h' | sort)
if [[ ${#uncovered[@]} -gt 0 ]]; then
  echo "run_clang_tidy: headers not included by any translation unit" \
       "(static analysis never sees them):" >&2
  printf '  %s\n' "${uncovered[@]}" >&2
  exit 1
fi
echo "run_clang_tidy: header coverage ok" >&2

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping." \
       "Install clang-tidy (or set CLANG_TIDY) to run the lint gate." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

cd "${repo_root}"
mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_clang_tidy: checking ${#sources[@]} files with ${tidy_bin}" >&2
"${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}"
echo "run_clang_tidy: clean" >&2
