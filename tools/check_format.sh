#!/usr/bin/env bash
# Check-only formatting gate: runs `clang-format --dry-run -Werror` (config:
# .clang-format at the repo root) over the C++ tree. Never rewrites files.
#
# Usage: tools/check_format.sh
#
# Exits 0 with a notice when clang-format is not installed so developer
# machines without LLVM tooling are not blocked; CI installs clang-format
# and enforces the gate.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

format_bin="${CLANG_FORMAT:-}"
if [[ -z "${format_bin}" ]]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      format_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${format_bin}" ]]; then
  echo "check_format: clang-format not found on PATH; skipping." \
       "Install clang-format (or set CLANG_FORMAT) to run the gate." >&2
  exit 0
fi

cd "${repo_root}"
mapfile -t files < <(find src tests bench examples \
                          \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) |
                     sort)
echo "check_format: checking ${#files[@]} files with ${format_bin}" >&2
"${format_bin}" --dry-run -Werror "${files[@]}"
echo "check_format: clean" >&2
