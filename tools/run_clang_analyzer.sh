#!/usr/bin/env bash
# Runs the Clang Static Analyzer (the clang-analyzer-* checks, via
# clang-tidy so it shares the compile database) over every library source
# file, treating every finding as an error. This is the deep
# path-sensitive pass — null derefs, use-after-move, leaked resources —
# that complements the style/bug-prone checks in .clang-tidy.
#
# Usage: tools/run_clang_analyzer.sh [build-dir]
#
# The build directory must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. Exits 0 with a notice when
# clang-tidy is not installed, so local runs degrade gracefully; the CI
# static-analysis job installs the tooling and enforces.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_analyzer: clang-tidy not found on PATH; skipping." \
       "Install clang-tidy (or set CLANG_TIDY) to run the analyzer." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_analyzer: ${build_dir}/compile_commands.json not found." >&2
  echo "Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

cd "${repo_root}"
mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_clang_analyzer: analyzing ${#sources[@]} files with ${tidy_bin}" >&2
# --checks overrides .clang-tidy: only the analyzer runs here, and every
# analyzer diagnostic is promoted to an error.
"${tidy_bin}" -p "${build_dir}" --quiet \
  --checks='-*,clang-analyzer-*' \
  --warnings-as-errors='clang-analyzer-*' \
  "${sources[@]}"
echo "run_clang_analyzer: clean" >&2
