// Registered in CMakeLists.txt below; produces no findings.
int main() { return 0; }
