// Deliberately NOT registered in CMakeLists.txt.
int main() { return 0; }
