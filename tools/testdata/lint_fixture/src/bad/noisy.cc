#include <cstdlib>
#include <iostream>

namespace dar {

// Talking about a new cluster in a comment is fine; "new" in a string is
// fine too.
const char* kMessage = "a new hope";

void Noisy() {
  std::cout << "library code must not write to stdout" << std::endl;
  int* leak = new int(7);
  delete leak;
  int roll = rand() % 6;
  if (roll == 0) abort();
}

}  // namespace dar
