#ifndef DAR_BAD_RAW_MUTEX_H_
#define DAR_BAD_RAW_MUTEX_H_

#include <mutex>
#include <thread>

namespace dar {

// Raw standard-library locking: invisible to the thread-safety analysis.
inline int CountWithRawLock() {
  static std::mutex mu;
  const std::lock_guard lock(mu);
  return 1;
}

// A detached thread outlives every shutdown path.
inline void FireAndForget() { std::thread([] {}).detach(); }

}  // namespace dar

#endif  // DAR_BAD_RAW_MUTEX_H_
