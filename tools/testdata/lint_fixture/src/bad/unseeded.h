#ifndef DAR_BAD_UNSEEDED_H_
#define DAR_BAD_UNSEEDED_H_

#include <random>

namespace dar {
inline double Roll() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return std::uniform_real_distribution<double>(0, 1)(gen);
}
}  // namespace dar

#endif  // DAR_BAD_UNSEEDED_H_
