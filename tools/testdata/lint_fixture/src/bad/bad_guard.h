#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace dar {
inline int Answer() { return 42; }
}  // namespace dar

#endif  // WRONG_GUARD_H
