#ifndef DAR_SERVE_SHOUTY_SERVER_H_
#define DAR_SERVE_SHOUTY_SERVER_H_

// Fixture proving src/serve/ is inside the linted tree: a header-guard
// that is correct for its path, plus one iostream violation.

#include <iostream>

namespace dar::serve {

inline void Announce() { std::cout << "listening\n"; }

}  // namespace dar::serve

#endif  // DAR_SERVE_SHOUTY_SERVER_H_
