#ifndef DAR_QUALITY_BIASED_MEASURE_H_
#define DAR_QUALITY_BIASED_MEASURE_H_

// Fixture proving src/quality/ is inside the linted tree: a header-guard
// that is correct for its path, plus one unseeded-rng violation (a
// measure with hidden randomness would break the bit-identical scoring
// contract, and the linter is the first line of defense).

#include <random>

namespace dar::quality {

inline double NoisyScore() { return std::random_device{}() % 100 / 100.0; }

}  // namespace dar::quality

#endif  // DAR_QUALITY_BIASED_MEASURE_H_
