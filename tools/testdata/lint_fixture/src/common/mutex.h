#ifndef DAR_COMMON_MUTEX_H_
#define DAR_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace dar {
// Allowlisted: the one file permitted to name the raw std primitives the
// no-raw-mutex rule bans everywhere else. Must stay silent in the golden
// output.
class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};
}  // namespace dar

#endif  // DAR_COMMON_MUTEX_H_
