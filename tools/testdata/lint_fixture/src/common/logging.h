#ifndef DAR_COMMON_LOGGING_H_
#define DAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>

namespace dar {
// The one place allowed to talk to stderr and abort.
inline void Fatal() {
  std::cerr << "fatal" << std::endl;
  std::abort();
}
}  // namespace dar

#endif  // DAR_COMMON_LOGGING_H_
