#ifndef DAR_COMMON_RANDOM_H_
#define DAR_COMMON_RANDOM_H_

#include <random>

namespace dar {
// The one place allowed to name the underlying engine.
class Rng {
 public:
  explicit Rng(unsigned seed) : engine_(seed) {}

 private:
  std::mt19937 engine_;
};
}  // namespace dar

#endif  // DAR_COMMON_RANDOM_H_
