#ifndef DAR_STREAM_LEAKY_SNAPSHOT_H_
#define DAR_STREAM_LEAKY_SNAPSHOT_H_

// Fixture proving src/stream/ is inside the linted tree: a header-guard
// that is correct for its path, plus one naked-new violation.

namespace dar {

struct LeakySnapshot {
  int* generation = new int(0);
};

}  // namespace dar

#endif  // DAR_STREAM_LEAKY_SNAPSHOT_H_
