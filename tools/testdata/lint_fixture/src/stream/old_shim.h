#ifndef DAR_STREAM_OLD_SHIM_H_
#define DAR_STREAM_OLD_SHIM_H_

// Fixture for no-lingering-deprecated: a shim kept alive under
// [[deprecated]] instead of being deleted with its callers migrated.

namespace dar {

struct OldShim {
  [[deprecated("use NewApi()")]] int OldApi() const { return 0; }
  [[ deprecated ]] int OlderApi() const { return 0; }
};

}  // namespace dar

#endif  // DAR_STREAM_OLD_SHIM_H_
