#ifndef DAR_PERSIST_CHATTY_READER_H_
#define DAR_PERSIST_CHATTY_READER_H_

// Fixture proving src/persist/ is inside the linted tree: a header-guard
// that is correct for its path, plus one iostream violation.

#include <iostream>

namespace dar::persist {

inline void Complain() { std::cerr << "corrupt checkpoint\n"; }

}  // namespace dar::persist

#endif  // DAR_PERSIST_CHATTY_READER_H_
