#ifndef DAR_GRAPH_GREEDY_ENGINE_H_
#define DAR_GRAPH_GREEDY_ENGINE_H_

// Fixture proving src/graph/ is inside the linted tree: a header-guard
// that is correct for its path, plus one naked-new violation (the clique
// engine owns its frame stacks through std::vector, so a raw allocation
// here would be both a leak risk and a style break).

namespace dar::graph {

inline int* LeakFrame() { return new int[64]; }

}  // namespace dar::graph

#endif  // DAR_GRAPH_GREEDY_ENGINE_H_
