#!/usr/bin/env python3
"""Golden-output test for tools/dar_lint.py.

Runs the linter over the fixture tree in tools/testdata/lint_fixture (which
plants at least one violation of each rule, plus allowlisted files that must
stay silent) and diffs stdout against tools/testdata/expected_lint_output.txt.
Also asserts the exit codes: 1 on the fixture, 0 on the real tree, and that
every registered rule fires somewhere in the golden output — a rule nobody
violates in the fixture is a rule whose regression coverage silently rotted.
"""

import difflib
import pathlib
import re
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent
REPO = TOOLS.parent

# Every rule dar_lint.py implements. Adding a rule without a fixture case
# (and a golden line) fails the coverage check below.
ALL_RULES = {
    "header-guard",
    "no-iostream",
    "no-naked-new",
    "no-unseeded-rng",
    "no-raw-mutex",
    "no-detached-thread",
    "no-lingering-deprecated",
    "test-registered",
}


def main():
    fixture = TOOLS / "testdata" / "lint_fixture"
    expected_path = TOOLS / "testdata" / "expected_lint_output.txt"

    proc = subprocess.run(
        [sys.executable, str(TOOLS / "dar_lint.py"), "--root", str(fixture)],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 on the fixture, got {proc.returncode}")
        print(proc.stdout + proc.stderr)
        return 1

    expected = expected_path.read_text()
    covered = set(re.findall(r"\[([a-z-]+)\]", expected))
    if covered != ALL_RULES:
        missing = sorted(ALL_RULES - covered)
        extra = sorted(covered - ALL_RULES)
        print(f"FAIL: golden output rule coverage mismatch: "
              f"missing={missing} unknown={extra}")
        return 1

    if proc.stdout != expected:
        print("FAIL: lint output differs from golden file:")
        sys.stdout.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="expected_lint_output.txt", tofile="actual"))
        return 1

    proc = subprocess.run(
        [sys.executable, str(TOOLS / "dar_lint.py"), "--root", str(REPO)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("FAIL: the real tree must lint clean:")
        print(proc.stdout + proc.stderr)
        return 1

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
