#!/usr/bin/env python3
"""Golden-output test for tools/dar_lint.py.

Runs the linter over the fixture tree in tools/testdata/lint_fixture (which
plants exactly one violation of each rule, plus allowlisted files that must
stay silent) and diffs stdout against tools/testdata/expected_lint_output.txt.
Also asserts the exit codes: 1 on the fixture, 0 on the real tree.
"""

import difflib
import pathlib
import subprocess
import sys

TOOLS = pathlib.Path(__file__).resolve().parent
REPO = TOOLS.parent


def main():
    fixture = TOOLS / "testdata" / "lint_fixture"
    expected_path = TOOLS / "testdata" / "expected_lint_output.txt"

    proc = subprocess.run(
        [sys.executable, str(TOOLS / "dar_lint.py"), "--root", str(fixture)],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 on the fixture, got {proc.returncode}")
        print(proc.stdout + proc.stderr)
        return 1

    expected = expected_path.read_text()
    if proc.stdout != expected:
        print("FAIL: lint output differs from golden file:")
        sys.stdout.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="expected_lint_output.txt", tofile="actual"))
        return 1

    proc = subprocess.run(
        [sys.executable, str(TOOLS / "dar_lint.py"), "--root", str(REPO)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("FAIL: the real tree must lint clean:")
        print(proc.stdout + proc.stderr)
        return 1

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
