#!/usr/bin/env python3
"""Inspect DAR checkpoint files without the C++ library.

Parses the versioned container of src/persist/checkpoint_io.h (magic,
format_version, CRC-guarded length-prefixed sections) and the section
payloads of src/persist/codec.cc / src/stream/stream_checkpoint.cc, and
prints a structural summary: per-section byte sizes, schema/partition
shapes, stream counters, per-part ACF-tree statistics (node/leaf/outlier
counts verified against a full recursive walk of the serialized node
structure), and snapshot cluster/clique/rule counts.

Stdlib-only (struct + binascii.crc32 — the C++ side uses the same
CRC-32/ISO-HDLC polynomial) so it runs anywhere Python does. The wire
layout mirrored here must be updated in lockstep with the C++ codecs; the
`dar_ckpt` ctest golden test pins the agreement.

Usage: tools/dar_ckpt.py [--no-floats] CHECKPOINT

Exits 0 on a valid checkpoint, 1 on any corruption (bad magic, CRC
mismatch, truncation, counter disagreement), printing the reason to
stderr. `--no-floats` renders every floating-point field as `_` so output
over deterministic fixtures is byte-stable for golden tests.
"""

import argparse
import binascii
import pathlib
import struct
import sys

MAGIC = b"DARCKPT\x00"
FORMAT_VERSION = 2
HEADER_BYTES = 20

SECTION_NAMES = {1: "config", 2: "schema", 3: "partition",
                 4: "dictionaries", 5: "stream_state", 6: "builder",
                 7: "snapshot", 8: "shards", 9: "retained_rows"}
METRIC_NAMES = {0: "euclidean", 1: "manhattan", 2: "discrete"}
ATTRIBUTE_KINDS = {0: "interval", 1: "nominal"}
CLUSTER_METRICS = {0: "D0", 1: "D1", 2: "D2", 3: "D3", 4: "D4"}

# Safety cap mirroring the C++ decoder's recursion guard.
MAX_NODE_DEPTH = 64


class CorruptError(Exception):
    """Any structural problem with the checkpoint bytes."""


class Reader:
    """Bounds-checked little-endian cursor over a byte range."""

    def __init__(self, data, what="payload"):
        self.data = data
        self.pos = 0
        self.what = what

    def _take(self, n, what):
        if self.pos + n > len(self.data):
            raise CorruptError(
                f"truncated {self.what}: need {n} bytes for {what}, "
                f"{len(self.data) - self.pos} remain")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self, what="u8"):
        return self._take(1, what)[0]

    def u32(self, what="u32"):
        return struct.unpack("<I", self._take(4, what))[0]

    def u64(self, what="u64"):
        return struct.unpack("<Q", self._take(8, what))[0]

    def i32(self, what="i32"):
        return struct.unpack("<i", self._take(4, what))[0]

    def i64(self, what="i64"):
        return struct.unpack("<q", self._take(8, what))[0]

    def f64(self, what="f64"):
        return struct.unpack("<d", self._take(8, what))[0]

    def str_(self, what="string"):
        n = self.u32(what + " length")
        return self._take(n, what).decode("utf-8", errors="replace")

    def remaining(self):
        return len(self.data) - self.pos

    def expect_end(self, what):
        if self.remaining() != 0:
            raise CorruptError(
                f"{what} has {self.remaining()} trailing bytes")

    def count(self, min_bytes_each, what):
        """A u32 element count, refused when it cannot fit in the bytes
        that remain — mirrors the C++ decoder's allocation guard."""
        n = self.u32(what + " count")
        if n * min_bytes_each > self.remaining():
            raise CorruptError(
                f"{what} count {n} cannot fit in "
                f"{self.remaining()} remaining bytes")
        return n


class Printer:
    def __init__(self, show_floats):
        self.show_floats = show_floats

    def flt(self, value):
        return repr(value) if self.show_floats else "_"

    def line(self, indent, text):
        print("  " * indent + text)


# ---------------------------------------------------------------------------
# Shared sub-structures (mirroring codec.cc).

def parse_cf(r):
    """CfVector: metric u8, dim u32, n i64, 4*dim f64 moment vectors, plus
    per-dimension histograms for discrete parts. Returns (metric, dim, n)."""
    metric = r.u8("CF metric")
    if metric not in METRIC_NAMES:
        raise CorruptError(f"CF metric byte {metric} out of range")
    dim = r.u32("CF dim")
    n = r.i64("CF n")
    if n < 0:
        raise CorruptError(f"CF has negative count {n}")
    for _ in range(4 * dim):
        r.f64("CF moments")
    if METRIC_NAMES[metric] == "discrete":
        for d in range(dim):
            entries = r.count(16, f"CF histogram dim {d}")
            last = None
            for _ in range(entries):
                value = r.f64("histogram value")
                if last is not None and not value > last:
                    raise CorruptError(
                        "CF histogram keys not strictly ascending")
                last = value
                r.i64("histogram count")
    return metric, dim, n


def parse_acf(r):
    """Acf: own_part u32, image count u32, then one CF per part. Returns
    (own_part, n) where n is the mass of the own-part image."""
    own_part = r.u32("ACF own_part")
    images = r.count(21, "ACF image")
    n = 0
    for p in range(images):
        _, _, cf_n = parse_cf(r)
        if p == own_part:
            n = cf_n
    return own_part, n


def parse_tree_options(r, out):
    out["branching_factor"] = r.i32("branching_factor")
    out["leaf_capacity"] = r.i32("leaf_capacity")
    out["initial_threshold"] = r.f64("initial_threshold")
    out["memory_budget_bytes"] = r.u64("memory_budget_bytes")
    out["threshold_growth"] = r.f64("threshold_growth")
    out["outlier_entry_min_n"] = r.i64("outlier_entry_min_n")
    out["max_rebuilds_per_insert"] = r.i32("max_rebuilds_per_insert")


def parse_node(r, depth=0):
    """Preorder node walk. Returns (nodes, leaf_entries) under this node."""
    if depth > MAX_NODE_DEPTH:
        raise CorruptError(f"tree deeper than {MAX_NODE_DEPTH} levels")
    is_leaf = r.u8("node tag")
    if is_leaf > 1:
        raise CorruptError(f"node tag byte {is_leaf} is neither 0 nor 1")
    nodes, leaf_entries = 1, 0
    if is_leaf:
        for _ in range(r.count(21, "leaf entry")):
            parse_acf(r)
            leaf_entries += 1
    else:
        children = r.count(22, "child")
        if children == 0:
            raise CorruptError("internal node with zero children")
        for _ in range(children):
            parse_cf(r)
            sub_nodes, sub_entries = parse_node(r, depth + 1)
            nodes += sub_nodes
            leaf_entries += sub_entries
    return nodes, leaf_entries


def parse_tree(r, p):
    """One ACF-tree blob (see PersistPeer::EncodeTree). Returns a summary
    line after verifying the stored counters against the node walk."""
    own_part = r.u32("tree own_part")
    opts = {}
    parse_tree_options(r, opts)
    r.f64("threshold")
    rebuilds = r.i32("rebuild_count")
    splits = r.i64("split_count")
    points = r.i64("points_inserted")
    num_nodes = r.u64("num_nodes")
    num_leaf_entries = r.u64("num_leaf_entries")
    outlier_buffer = r.count(21, "outlier_buffer ACF")
    for _ in range(outlier_buffer):
        parse_acf(r)
    outliers = r.count(21, "outlier ACF")
    for _ in range(outliers):
        parse_acf(r)
    walked_nodes, walked_entries = parse_node(r)
    if walked_nodes != num_nodes or walked_entries != num_leaf_entries:
        raise CorruptError(
            f"tree {p}: serialized counters claim {num_nodes} nodes / "
            f"{num_leaf_entries} leaf entries but the node walk found "
            f"{walked_nodes} / {walked_entries}")
    return (f"tree[{p}] part={own_part} nodes={num_nodes} "
            f"leaf_entries={num_leaf_entries} "
            f"outlier_buffer={outlier_buffer} outliers={outliers} "
            f"points={points} rebuilds={rebuilds} splits={splits} "
            f"branching={opts['branching_factor']} "
            f"leaf_capacity={opts['leaf_capacity']}")


def parse_id_list(r, what):
    return [r.u64(what) for _ in range(r.count(8, what))]


# ---------------------------------------------------------------------------
# Section parsers. Each consumes its whole payload (expect_end).

def show_config(r, pr):
    pr.line(1, f"memory_budget_bytes: {r.u64('memory_budget_bytes')}")
    pr.line(1, f"frequency_fraction: {pr.flt(r.f64())}")
    pr.line(1, f"outlier_fraction: {pr.flt(r.f64())}")
    diameters = [r.f64() for _ in range(r.count(8, "initial_diameter"))]
    pr.line(1, "initial_diameters: ["
            + ", ".join(pr.flt(d) for d in diameters) + "]")
    opts = {}
    parse_tree_options(r, opts)
    pr.line(1, f"tree.branching_factor: {opts['branching_factor']}")
    pr.line(1, f"tree.leaf_capacity: {opts['leaf_capacity']}")
    pr.line(1, f"tree.threshold_growth: {pr.flt(opts['threshold_growth'])}")
    pr.line(1, f"refine_clusters: {bool(r.u8())}")
    metric = r.u8("cluster metric")
    if metric not in CLUSTER_METRICS:
        raise CorruptError(f"cluster metric byte {metric} out of range")
    pr.line(1, f"metric: {CLUSTER_METRICS[metric]}")
    pr.line(1, f"degree_threshold: {pr.flt(r.f64())}")
    for name in ("degree_thresholds", "density_thresholds"):
        values = [r.f64() for _ in range(r.count(8, name))]
        pr.line(1, f"{name}: [" + ", ".join(pr.flt(v) for v in values) + "]")
    pr.line(1, f"phase2_leniency: {pr.flt(r.f64())}")
    pr.line(1, f"prune_low_density_images: {bool(r.u8())}")
    pr.line(1, f"max_antecedent: {r.u64()}")
    pr.line(1, f"max_consequent: {r.u64()}")
    pr.line(1, f"max_rules: {r.u64()}")
    pr.line(1, f"max_cliques: {r.u64()}")
    pr.line(1, f"count_rule_support: {bool(r.u8())}")


def show_schema(r, pr):
    count = r.count(5, "schema attribute")
    pr.line(1, f"attributes: {count}")
    for i in range(count):
        name = r.str_("attribute name")
        kind = r.u8("attribute kind")
        if kind not in ATTRIBUTE_KINDS:
            raise CorruptError(f"attribute kind byte {kind} out of range")
        pr.line(2, f"[{i}] {name}: {ATTRIBUTE_KINDS[kind]}")


def show_partition(r, pr):
    count = r.count(5, "partition part")
    pr.line(1, f"parts: {count}")
    for p in range(count):
        metric = r.u8("part metric")
        if metric not in METRIC_NAMES:
            raise CorruptError(f"part metric byte {metric} out of range")
        columns = [r.u64("column") for _ in range(r.count(8, "column"))]
        pr.line(2, f"[{p}] metric={METRIC_NAMES[metric]} columns={columns}")


def show_dictionaries(r, pr):
    count = r.count(4, "dictionary")
    pr.line(1, f"dictionaries: {count}")
    for i in range(count):
        labels = r.count(4, "dictionary label")
        for _ in range(labels):
            r.str_("label")
        pr.line(2, f"[{i}] {labels} labels")


def show_stream_state(r, pr):
    pr.line(1, f"generation: {r.u64('generation')}")
    pr.line(1, f"rows_ingested: {r.i64('rows_ingested')}")
    pr.line(1, f"rows_at_snapshot: {r.i64('rows_at_snapshot')}")
    pr.line(1, f"rows_at_checkpoint: {r.i64('rows_at_checkpoint')}")
    pr.line(1, f"remine_every_rows: {r.i64('remine_every_rows')}")
    index_byte = r.u8("build_rule_index")
    if index_byte > 1:
        raise CorruptError(f"build_rule_index byte {index_byte} is not 0/1")
    pr.line(1, f"build_rule_index: {bool(index_byte)}")
    pr.line(1, f"checkpoint_every_rows: {r.i64('checkpoint_every_rows')}")
    pr.line(1, f"checkpoint_path: {r.str_('checkpoint_path')!r}")
    if r.remaining() == 0:
        return  # pre-quality checkpoint: no quality-knob tail
    measures = [r.str_("score measure")
                for _ in range(r.count(4, "score measure"))]
    pr.line(1, f"score_measures: {measures}")
    prune = r.u8("prune_redundant")
    if prune > 1:
        raise CorruptError(f"prune_redundant byte {prune} is not 0/1")
    pr.line(1, f"prune_redundant: {bool(prune)}")
    pr.line(1, f"prune_min_overlap: {pr.flt(r.f64('prune_min_overlap'))}")
    diff = r.u8("diff_snapshots")
    if diff > 1:
        raise CorruptError(f"diff_snapshots byte {diff} is not 0/1")
    pr.line(1, f"diff_snapshots: {bool(diff)}")
    pr.line(1, "drift_interval_tolerance: "
            f"{pr.flt(r.f64('drift_interval_tolerance'))}")
    pr.line(1, "drift_degree_tolerance: "
            f"{pr.flt(r.f64('drift_degree_tolerance'))}")


def show_builder(r, pr):
    pr.line(1, f"rows_added: {r.i64('rows_added')}")
    trees = r.count(9, "tree blob")
    pr.line(1, f"trees: {trees}")
    for p in range(trees):
        blob_len = r.u64("tree blob length")
        blob = Reader(r._take(blob_len, f"tree {p} blob"), f"tree {p}")
        pr.line(2, parse_tree(blob, p))
        blob.expect_end(f"tree {p} blob")


def show_snapshot(r, pr):
    pr.line(1, f"generation: {r.u64('generation')}")
    pr.line(1, f"rows_ingested: {r.i64('rows_ingested')}")
    num_parts = r.count(13, "layout part")
    for _ in range(num_parts):
        r.u64("part dim")
        metric = r.u8("part metric")
        if metric not in METRIC_NAMES:
            raise CorruptError(f"layout metric byte {metric} out of range")
        r.str_("part label")
    pr.line(1, f"layout_parts: {num_parts}")
    clusters = r.count(37, "cluster")
    per_part = [0] * num_parts
    for i in range(clusters):
        cluster_id = r.u64("cluster id")
        if cluster_id != i:
            raise CorruptError(
                f"cluster ids not dense: expected {i}, got {cluster_id}")
        part = r.u64("cluster part")
        if part >= num_parts:
            raise CorruptError(
                f"cluster {i} on part {part} outside the layout")
        per_part[part] += 1
        parse_acf(r)
    pr.line(1, f"clusters: {clusters} per_part={per_part}")
    tree_stats = r.count(61, "tree stats")
    for _ in range(tree_stats):
        r.u64(), r.u64(), r.u64(), r.i32(), r.f64()
        r.u64(), r.i64(), r.i64(), r.i32()
    pr.line(1, f"tree_stats: {tree_stats}")
    outliers = r.count(21, "outlier")
    for _ in range(outliers):
        parse_acf(r)
    pr.line(1, f"outliers: {outliers}")
    raw = [r.u64() for _ in range(r.count(8, "raw cluster count"))]
    pr.line(1, f"raw_cluster_counts: {raw}")
    d0 = [r.f64() for _ in range(r.count(8, "effective d0"))]
    pr.line(1, "effective_d0: [" + ", ".join(pr.flt(v) for v in d0) + "]")
    pr.line(1, f"frequency_threshold: {r.i64('frequency_threshold')}")
    r.f64("phase1 seconds")
    cliques = r.count(4, "clique")
    sizes = []
    for _ in range(cliques):
        sizes.append(len(parse_id_list(r, "clique member")))
    nontrivial = r.u64("num_nontrivial_cliques")
    pr.line(1, f"cliques: {cliques} nontrivial={nontrivial} "
            f"sizes={sorted(sizes, reverse=True)}")
    pr.line(1, f"cliques_truncated: {bool(r.u8())}")
    pr.line(1, f"graph_edges: {r.u64('graph_edges')}")
    rules = r.count(28, "rule")
    for _ in range(rules):
        parse_id_list(r, "antecedent")
        parse_id_list(r, "consequent")
        r.f64("degree")
        r.f64("cooccurrence_slack")
        r.i64("support_count")
    pr.line(1, f"rules: {rules}")
    pr.line(1, f"rules_truncated: {bool(r.u8())}")
    r.f64("phase2 seconds")


def show_shards(r, pr):
    """Shard provenance: which shards a checkpoint's summaries came from.
    One entry for a stream's own cadence checkpoint; one per merged input
    for a MergeCheckpoints output. shard_id -1 means anonymous."""
    count = r.count(16, "shard")
    pr.line(1, f"shards: {count}")
    for i in range(count):
        shard_id = r.i64("shard id")
        rows = r.i64("shard rows")
        if rows < 0:
            raise CorruptError(f"shard {i} has negative row count {rows}")
        label = "anonymous" if shard_id == -1 else f"id={shard_id}"
        pr.line(2, f"[{i}] {label} rows={rows}")


def show_retained_rows(r, pr):
    """Tuples retained for the support post-scan: u64 rows, u64 cols,
    row-major f64 values. Values are consumed (bounds-checked) but only
    the shape is printed — the data itself can be megabytes."""
    rows = r.u64("retained rows")
    cols = r.u64("retained cols")
    if rows * cols * 8 != r.remaining():
        raise CorruptError(
            f"retained rows section claims {rows}x{cols} values but "
            f"{r.remaining()} payload bytes remain")
    for _ in range(rows * cols):
        r.f64("retained value")
    pr.line(1, f"rows: {rows}")
    pr.line(1, f"cols: {cols}")


SECTION_PARSERS = {"config": show_config, "schema": show_schema,
                   "partition": show_partition,
                   "dictionaries": show_dictionaries,
                   "stream_state": show_stream_state,
                   "builder": show_builder, "snapshot": show_snapshot,
                   "shards": show_shards,
                   "retained_rows": show_retained_rows}


# ---------------------------------------------------------------------------
# Container framing.

def parse_container(data):
    """Verifies the framing and yields (id, payload) in file order."""
    if len(data) < HEADER_BYTES:
        raise CorruptError(
            f"not a DAR checkpoint: {len(data)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header")
    if data[:8] != MAGIC:
        raise CorruptError("not a DAR checkpoint (bad magic)")
    version, section_count, header_crc = struct.unpack("<III", data[8:20])
    if binascii.crc32(data[:16]) != header_crc:
        raise CorruptError("header CRC mismatch (corrupted header)")
    if version > FORMAT_VERSION:
        raise CorruptError(
            f"format_version {version} is newer than supported version "
            f"{FORMAT_VERSION} — upgrade this tool to read the file")
    if version == 0:
        raise CorruptError("format_version 0 is invalid")
    sections = []
    seen = set()
    r = Reader(data, "container")
    r.pos = HEADER_BYTES
    for _ in range(section_count):
        section_start = r.pos
        section_id = r.u32("section id")
        length = r.u64("section length")
        payload = r._take(length, f"section {section_id} payload")
        crc = r.u32("section CRC")
        # Format v2 guards the section header (id + length) along with the
        # payload; v1 covered the payload bytes only.
        covered = (data[section_start:section_start + 12 + length]
                   if version >= 2 else payload)
        if binascii.crc32(covered) != crc:
            name = SECTION_NAMES.get(section_id, "unknown")
            raise CorruptError(
                f"section {section_id} ({name}) failed its CRC check")
        if section_id in seen:
            raise CorruptError(f"duplicate section {section_id}")
        seen.add(section_id)
        sections.append((section_id, payload))
    r.expect_end("container")
    return version, sections


def inspect(path, show_floats):
    data = pathlib.Path(path).read_bytes()
    version, sections = parse_container(data)
    pr = Printer(show_floats)
    pr.line(0, f"format_version: {version}")
    pr.line(0, f"sections: {len(sections)}")
    for section_id, payload in sections:
        name = SECTION_NAMES.get(section_id, "unknown")
        pr.line(0, f"section {name} (id={section_id}, {len(payload)} bytes)")
        parser = SECTION_PARSERS.get(name)
        if parser is None:
            pr.line(1, "(unknown section, skipped)")
            continue
        r = Reader(payload, f"{name} section")
        parser(r, pr)
        r.expect_end(f"{name} section")
    pr.line(0, "ok")


def main():
    parser = argparse.ArgumentParser(
        description="Inspect a DAR checkpoint file.")
    parser.add_argument("checkpoint", help="path to the .darckpt file")
    parser.add_argument("--no-floats", action="store_true",
                        help="render floating-point fields as '_' "
                        "(byte-stable output for golden tests)")
    args = parser.parse_args()
    try:
        inspect(args.checkpoint, show_floats=not args.no_floats)
    except OSError as err:
        print(f"dar_ckpt: error: {err}", file=sys.stderr)
        return 1
    except CorruptError as err:
        print(f"dar_ckpt: error: {args.checkpoint}: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
