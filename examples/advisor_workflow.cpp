// A realistic end-to-end workflow using the library's convenience layers:
//
//   1. SuggestThresholds() derives per-attribute-set thresholds from a data
//      sample (no manual knob-tuning),
//   2. Phase1Builder streams tuples in one at a time (the data never needs
//      to be materialized as a Relation for Phase I),
//   3. Session::RunPhase2 forms the rules, with a CountersObserver
//      watching graph/clique events,
//   4. MiningResultToJson exports everything for downstream tools.
//
// Run: ./build/examples/advisor_workflow [num_tuples] [seed]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/advisor.h"
#include "core/observer.h"
#include "core/phase1_builder.h"
#include "core/report.h"
#include "core/session.h"
#include "datagen/fixtures.h"
#include "serve/query_service.h"

int main(int argc, char** argv) {
  using namespace dar;

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  auto data = GeneratePlanted(InsuranceSpec(), n, seed);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const Schema& schema = data->relation.schema();

  // 1. Let the advisor pick thresholds from a sample.
  auto advice = SuggestThresholds(data->relation, data->partition);
  if (!advice.ok()) {
    std::cerr << advice.status() << "\n";
    return 1;
  }
  std::cout << "Advisor rationale:\n" << advice->rationale << "\n";

  DarConfig config;
  config.frequency_fraction = 0.08;
  config.initial_diameters = advice->initial_diameters;
  config.density_thresholds = advice->density_thresholds;
  config.degree_thresholds = advice->degree_thresholds;
  config.refine_clusters = true;

  // 2. Stream Phase I row by row (here from the generated relation; in a
  //    real deployment, from a cursor or a file).
  auto builder = Phase1Builder::Make(config, schema, data->partition);
  if (!builder.ok()) {
    std::cerr << builder.status() << "\n";
    return 1;
  }
  for (size_t r = 0; r < data->relation.num_rows(); ++r) {
    Status s = builder->AddRow(data->relation.Row(r));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  auto phase1 = std::move(*builder).Finish();
  if (!phase1.ok()) {
    std::cerr << phase1.status() << "\n";
    return 1;
  }

  // 3. Phase II from the summaries, through a Session. The observer
  //    receives every graph edge and clique as it is formed.
  auto counters = std::make_shared<CountersObserver>();
  auto session = Session::Builder()
                     .WithConfig(config)
                     .AddObserver(counters)
                     .Build();
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  auto phase2 = session->RunPhase2(*phase1);
  if (!phase2.ok()) {
    std::cerr << phase2.status() << "\n";
    return 1;
  }
  std::cout << "Observer saw " << counters->counters().graph_edges
            << " graph edges and " << counters->counters().cliques_found
            << " cliques\n\n";

  DarMiningResult result{std::move(*phase1), std::move(*phase2)};
  std::cout << MiningResultSummary(result, schema, data->partition, 8);

  // 4. Machine-readable export.
  std::cout << "\nJSON report (first 600 chars):\n"
            << MiningResultToJson(result, schema, data->partition)
                   .substr(0, 600)
            << "...\n";

  // 5. Serve the batch result through dar::QueryService — the same facade
  //    streams and the TCP rule server use — so downstream code asks
  //    "which rules fire for this tuple?" without touching Phase I/II
  //    internals. MakeSnapshot wraps the result (building the rule index);
  //    AttachSnapshot pins it as the served generation.
  QueryService service;
  service.AttachSnapshot(
      QueryService::MakeSnapshot(std::move(result), data->partition), schema,
      data->partition);
  const std::vector<double> tuple0 = data->relation.Row(0);
  PointQueryRequest query;
  query.tuple = tuple0;  // the request views the tuple, it does not copy
  PointQueryResponse hits;
  if (Status s = service.PointQuery(query, hits); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "\nServing check: tuple 0 falls in " << hits.clusters.size()
            << " clusters and fires " << hits.total_rule_matches
            << " rules\n";
  return 0;
}
