// Serving rules over TCP: mine a planted stream, publish it through
// dar::QueryService, front it with a RuleServer speaking the framed
// binary protocol AND HTTP/JSON on one port, and drive it with the
// bundled RuleClient — including a live snapshot hot-swap while the
// client keeps querying.
//
// Run: ./build/examples/rule_server [num_rows]
// While it runs (it prints the port), you can also:
//   curl "http://127.0.0.1:<port>/v1/info"
//   curl "http://127.0.0.1:<port>/v1/rules?limit=3&text=1"
//   curl "http://127.0.0.1:<port>/v1/query?tuple=1,2,3,4"

#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "datagen/planted.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "stream/streaming_miner.h"

int main(int argc, char** argv) {
  using namespace dar;
  const size_t num_rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;

  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, num_rows, /*seed=*/32);
  if (!data.ok()) {
    std::cerr << "datagen failed: " << data.status() << "\n";
    return 1;
  }
  const Relation& rel = data->relation;

  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  auto session = Session::Builder().WithConfig(config).WithThreads(0).Build();
  if (!session.ok()) {
    std::cerr << "bad config: " << session.status() << "\n";
    return 1;
  }
  auto stream = session->OpenStream(rel.schema(), data->partition);
  if (!stream.ok()) {
    std::cerr << "open failed: " << stream.status() << "\n";
    return 1;
  }

  // 1. Ingest the first half and publish generation 1.
  const size_t half = rel.num_rows() / 2;
  for (size_t r = 0; r < half; ++r) {
    if (auto s = (*stream)->IngestRow(rel.Row(r)); !s.ok()) {
      std::cerr << "ingest failed: " << s << "\n";
      return 1;
    }
  }
  if (auto snap = (*stream)->Remine(); !snap.ok()) {
    std::cerr << "re-mine failed: " << snap.status() << "\n";
    return 1;
  }

  // 2. Bind the service to the live stream and start the server on an
  //    ephemeral loopback port. Admission: at most 2 in-flight requests
  //    per tenant, 8 overall — past that, requests shed with
  //    kOverloaded instead of queueing.
  QueryService service;
  service.AttachStream(**stream);
  serve::ServerConfig server_config;
  server_config.admission.max_concurrent = 8;
  server_config.admission.max_per_tenant = 2;
  serve::RuleServer server(service, server_config);
  if (auto s = server.Start(); !s.ok()) {
    std::cerr << "server start failed: " << s << "\n";
    return 1;
  }
  std::cout << "serving on 127.0.0.1:" << server.port()
            << " (binary + HTTP)\n";

  // 3. A tenant session over the binary protocol.
  auto client = serve::RuleClient::Connect("127.0.0.1", server.port(),
                                           /*tenant=*/"example");
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status() << "\n";
    return 1;
  }
  SnapshotInfoResponse info;
  if (auto s = client->SnapshotInfo(info); !s.ok()) {
    std::cerr << "info failed: " << s << "\n";
    return 1;
  }
  std::cout << "generation " << info.generation << ": " << info.num_rules
            << " rules over " << info.num_clusters << " clusters from "
            << info.rows_ingested << " rows\n";

  // The request views the tuple (no copy); the row must stay alive for as
  // long as the request is used — it is queried again after the hot swap.
  const std::vector<double> tuple0 = rel.Row(0);
  PointQueryRequest query;
  query.tuple = tuple0;
  PointQueryResponse hits;
  if (auto s = client->PointQuery(query, hits); !s.ok()) {
    std::cerr << "query failed: " << s << "\n";
    return 1;
  }
  std::cout << "tuple 0: " << hits.clusters.size() << " clusters, "
            << hits.total_rule_matches << " firing rules (generation "
            << hits.generation << ")\n";

  // 4. Hot swap: ingest the second half and republish WHILE the
  //    connection stays open. The next query is answered from the new
  //    generation — no restart, no blocked reader.
  for (size_t r = half; r < rel.num_rows(); ++r) {
    if (auto s = (*stream)->IngestRow(rel.Row(r)); !s.ok()) {
      std::cerr << "ingest failed: " << s << "\n";
      return 1;
    }
  }
  if (auto snap = (*stream)->Remine(); !snap.ok()) {
    std::cerr << "re-mine failed: " << snap.status() << "\n";
    return 1;
  }
  if (auto s = client->PointQuery(query, hits); !s.ok()) {
    std::cerr << "query failed: " << s << "\n";
    return 1;
  }
  std::cout << "after hot swap, tuple 0: " << hits.clusters.size()
            << " clusters, " << hits.total_rule_matches
            << " firing rules (generation " << hits.generation << ")\n";

  // 5. Page the strongest rules with their pretty text.
  RuleListRequest list;
  list.limit = 3;
  list.include_text = true;
  RuleListResponse rules;
  if (auto s = client->ListRules(list, rules); !s.ok()) {
    std::cerr << "list failed: " << s << "\n";
    return 1;
  }
  std::cout << "top rules of " << rules.total_rules << ":\n";
  for (const RuleListEntry& entry : rules.rules) {
    std::cout << "  #" << entry.id << " " << entry.text << "\n";
  }

  server.Stop();
  return 0;
}
