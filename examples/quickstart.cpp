// Quickstart: mine distance-based association rules from a small in-memory
// relation of (age, salary) tuples.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "common/random.h"
#include "core/session.h"
#include "relation/partition.h"
#include "relation/relation.h"

int main() {
  using namespace dar;

  // 1. Build a relation: two populations of employees.
  Schema schema = *Schema::Make({{"age", AttributeKind::kInterval},
                                 {"salary", AttributeKind::kInterval}});
  Relation rel(schema);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    if (i % 2 == 0) {
      // Thirty-ish year olds earning about 40K.
      (void)rel.AppendRow({30 + rng.Gaussian(0, 1.5),
                           40000 + rng.Gaussian(0, 800)});
    } else {
      // Mid-fifties earning about 90K.
      (void)rel.AppendRow({55 + rng.Gaussian(0, 1.5),
                           90000 + rng.Gaussian(0, 800)});
    }
  }

  // 2. Partition the attributes: every attribute is its own set with a
  //    Euclidean metric (the library's default).
  AttributePartition partition = AttributePartition::SingletonPartition(schema);

  // 3. Configure and build a mining session. Build() validates the config
  //    up front; WithThreads(0) spreads both phases over the hardware —
  //    the output is bit-identical to a single-threaded run.
  DarConfig config;
  config.frequency_fraction = 0.10;     // clusters need >= 10% of tuples
  config.initial_diameters = {5.0, 3000.0};  // d0 per attribute
  // Degrees live on the consequent attribute's scale, so give each part its
  // own D0: ~5 years for age consequents, ~4000 dollars for salary ones.
  config.degree_thresholds = {5.0, 4000.0};
  config.count_rule_support = true;     // optional post-scan
  auto session = Session::Builder()
                     .WithConfig(config)
                     .WithThreads(0)  // 0 = hardware concurrency
                     .Build();
  if (!session.ok()) {
    std::cerr << "bad config: " << session.status() << "\n";
    return 1;
  }

  auto result = session->Mine(rel, partition);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  // 4. Inspect the output.
  const Phase1Result& phase1 = result->phase1();
  std::cout << "Phase I: " << phase1.clusters.size()
            << " frequent clusters (threshold s0 = "
            << phase1.frequency_threshold << " tuples)\n";
  for (const auto& c : phase1.clusters.clusters()) {
    std::cout << "  cluster " << c.id << ": "
              << phase1.clusters.Describe(c.id, schema, partition) << "\n";
  }
  std::cout << "Phase II: " << result->phase2().cliques.size()
            << " maximal cliques, " << result->rules().size()
            << " distance-based rules\n";
  for (const auto& rule : result->rules()) {
    std::cout << "  " << rule.ToString(phase1.clusters, schema, partition)
              << "\n";
  }
  // 5. The run's telemetry rides along on the report; export it as JSON if
  //    you want machine-readable run metrics (see telemetry/json.h).
  std::cout << "\nPhase I inserted "
            << result->telemetry.CounterOr("phase1.inserts")
            << " points; Phase II evaluated "
            << result->graph_comparisons_made() << " cluster pairs\n";
  return 0;
}
