// Multi-process distributed mining: N worker *processes* each mine their
// shard of the relation and write a checkpoint; the coordinator process
// merges the checkpoints at the ACF-summary level (Thm 6.1 additivity)
// and runs Phase II exactly once. No tuple crosses a process boundary —
// only CRC-guarded checkpoint files, the same format `dar_ckpt.py`
// inspects and streams recover from.
//
// The workload is integer-valued, so every CF sum is exact and the mined
// rules are bit-identical for every shard count: running with 1 shard and
// with 8 shards must print the same summary (CI diffs exactly that).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/shard_mine [num_rows] [num_shards]
//
// Internally re-invokes itself as
//   shard_mine --worker <shard> <num_shards> <num_rows> <ckpt_path>
// once per shard — a stand-in for N machines reading slices of a shared
// table and shipping checkpoints back to one coordinator.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "core/report.h"
#include "core/session.h"
#include "stream/streaming_miner.h"

namespace {

using namespace dar;

// Every process (parent and workers) rebuilds the same deterministic
// integer relation: three interleaved co-occurrence patterns near
// (0,0,0), (100,100,100) and (200,200,200). A worker then ingests only
// its contiguous slice — as if each machine read its partition of a
// shared table.
Result<Schema> MakeSchema() {
  return Schema::Make({{"X", AttributeKind::kInterval},
                       {"Y", AttributeKind::kInterval},
                       {"Z", AttributeKind::kInterval}});
}

Status FillRelation(Relation& rel, size_t num_rows) {
  for (size_t i = 0; rel.num_rows() < num_rows; ++i) {
    for (int k = 0; k < 3 && rel.num_rows() < num_rows; ++k) {
      const double base = 100.0 * k;
      DAR_RETURN_IF_ERROR(
          rel.AppendRow({base + static_cast<double>(i % 5),
                         base + static_cast<double>(i % 7),
                         base + static_cast<double>(i % 3)}));
    }
  }
  return Status::OK();
}

DarConfig MakeConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters = {30.0, 30.0, 30.0};
  config.degree_threshold = 150.0;
  // The coordinator merges summaries, never tuples, so the optional §6.2
  // support rescan cannot run there; disable it in the single-node
  // reference too so the two summaries are comparable.
  config.count_rule_support = false;
  return config;
}

int Fail(const char* what, const Status& status) {
  std::cerr << "shard_mine: " << what << ": " << status.ToString() << "\n";
  return 1;
}

// --worker <shard> <num_shards> <num_rows> <ckpt_path>: mine one shard's
// slice into a checkpoint and exit. Runs serially — shard-level
// parallelism is the process fan-out itself.
int RunWorker(int64_t shard, size_t num_shards, size_t num_rows,
              const std::string& ckpt_path) {
  auto schema = MakeSchema();
  if (!schema.ok()) return Fail("schema", schema.status());
  Relation rel(*schema);
  if (auto s = FillRelation(rel, num_rows); !s.ok()) return Fail("data", s);
  auto partition = AttributePartition::Make(
      *schema, {{{"X"}, MetricKind::kEuclidean},
                {{"Y"}, MetricKind::kEuclidean},
                {{"Z"}, MetricKind::kEuclidean}});
  if (!partition.ok()) return Fail("partition", partition.status());

  auto session = Session::Builder().WithConfig(MakeConfig()).Build();
  if (!session.ok()) return Fail("session", session.status());
  StreamConfig stream_config;
  stream_config.remine_every_rows = 0;  // Phase I only; coordinator mines
  stream_config.shard_id = shard;       // provenance for duplicate checks
  auto stream = session->OpenStream(*schema, *partition, stream_config);
  if (!stream.ok()) return Fail("open stream", stream.status());

  // Balanced split: shard s takes rows [s*n/N, (s+1)*n/N).
  const size_t begin = static_cast<size_t>(shard) * num_rows / num_shards;
  const size_t end =
      (static_cast<size_t>(shard) + 1) * num_rows / num_shards;
  for (size_t r = begin; r < end; ++r) {
    if (auto s = (*stream)->IngestRow(rel.Row(r)); !s.ok()) {
      return Fail("ingest", s);
    }
  }
  if (auto s = (*stream)->SaveCheckpoint(ckpt_path); !s.ok()) {
    return Fail("checkpoint", s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--worker") {
    if (argc != 6) {
      std::cerr << "usage: shard_mine --worker <shard> <num_shards> "
                   "<num_rows> <ckpt_path>\n";
      return 2;
    }
    return RunWorker(std::strtoll(argv[2], nullptr, 10),
                     std::strtoull(argv[3], nullptr, 10),
                     std::strtoull(argv[4], nullptr, 10), argv[5]);
  }

  const size_t num_rows =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;
  const size_t num_shards =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (num_rows == 0 || num_shards == 0 || num_shards > num_rows) {
    std::cerr << "shard_mine: need num_rows >= num_shards >= 1\n";
    return 2;
  }

  // 1. Fan out: one worker process per shard, each writing its
  //    checkpoint. std::system stands in for ssh/scheduler dispatch; the
  //    contract with the coordinator is only the checkpoint file.
  std::vector<std::string> ckpts;
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string path =
        "shard_mine." + std::to_string(s) + ".darckpt";
    const std::string cmd = std::string("\"") + argv[0] + "\" --worker " +
                            std::to_string(s) + " " +
                            std::to_string(num_shards) + " " +
                            std::to_string(num_rows) + " \"" + path + "\"";
    if (const int rc = std::system(cmd.c_str()); rc != 0) {
      std::cerr << "shard_mine: worker " << s << " failed (exit " << rc
                << ")\n";
      return 1;
    }
    ckpts.push_back(path);
  }
  std::cerr << "mined " << num_rows << " rows across " << num_shards
            << " worker processes\n";

  // 2. Merge + Phase II in the coordinator: compatibility-check the
  //    checkpoints (config/schema/partition/shard ids), merge the
  //    ACF-trees, and generate rules exactly once.
  auto session = Session::Builder().WithConfig(MakeConfig()).Build();
  if (!session.ok()) return Fail("session", session.status());
  auto report = session->NewCoordinator().MineFromCheckpoints(ckpts);
  if (!report.ok()) return Fail("merge-mine", report.status());

  // 3. Reference run: the same rows mined in one process. On integer
  //    data the distributed result is bit-identical, any shard count.
  auto schema = MakeSchema();
  if (!schema.ok()) return Fail("schema", schema.status());
  Relation rel(*schema);
  if (auto s = FillRelation(rel, num_rows); !s.ok()) return Fail("data", s);
  auto partition = AttributePartition::Make(
      *schema, {{{"X"}, MetricKind::kEuclidean},
                {{"Y"}, MetricKind::kEuclidean},
                {{"Z"}, MetricKind::kEuclidean}});
  if (!partition.ok()) return Fail("partition", partition.status());
  auto single = session->Mine(rel, *partition);
  if (!single.ok()) return Fail("single-node mine", single.status());

  const auto& merged_rules = report->result.phase2.rules;
  const auto& single_rules = single->result.phase2.rules;
  bool identical = merged_rules.size() == single_rules.size();
  for (size_t i = 0; identical && i < merged_rules.size(); ++i) {
    identical = merged_rules[i].antecedent == single_rules[i].antecedent &&
                merged_rules[i].consequent == single_rules[i].consequent &&
                merged_rules[i].degree == single_rules[i].degree;
  }
  // The equivalence verdict and timings go to stderr with the progress
  // chatter; stdout carries only the shard-count-invariant rule listing,
  // so CI can diff `shard_mine N 1` against `shard_mine N 8`
  // byte-for-byte.
  std::cerr << (identical ? "distributed == single-node (bit-identical "
                            "rules)\n"
                          : "MISMATCH: distributed != single-node\n");
  std::cerr << MiningResultSummary(report->result, *schema, *partition,
                                   /*max_rules=*/5);
  const auto& clusters = report->result.phase1.clusters;
  std::cout << clusters.size() << " clusters, " << merged_rules.size()
            << " rules\n";
  for (const auto& rule : merged_rules) {
    std::cout << rule.ToString(clusters, *schema, *partition) << "\n";
  }

  for (const std::string& path : ckpts) std::remove(path.c_str());
  return identical ? 0 : 1;
}
