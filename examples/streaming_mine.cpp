// Streaming mining: feed a WBCD-like planted dataset to a dar::stream in
// micro-batches, watch rule snapshots get republished on the cadence, and
// serve point queries through dar::QueryService — the same transport-
// agnostic facade the rule server (serve/server.h) speaks over TCP.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/streaming_mine [num_rows]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/session.h"
#include "datagen/planted.h"
#include "serve/query_service.h"
#include "stream/streaming_miner.h"

int main(int argc, char** argv) {
  using namespace dar;
  const size_t num_rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;

  // 1. A planted dataset standing in for an unbounded source: 4 interval
  //    attributes, 3 planted clusters each, 5% outliers.
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, num_rows, /*seed=*/32);
  if (!data.ok()) {
    std::cerr << "datagen failed: " << data.status() << "\n";
    return 1;
  }
  const Relation& rel = data->relation;

  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  auto session = Session::Builder().WithConfig(config).WithThreads(0).Build();
  if (!session.ok()) {
    std::cerr << "bad config: " << session.status() << "\n";
    return 1;
  }

  // 2. Open the stream: re-mine and republish every 1000 ingested rows.
  //    Re-mining is summary-only (Thm 6.1) — no ingested tuple is ever
  //    read again, so the refresh cost tracks the number of clusters, not
  //    the stream length.
  StreamConfig stream_config;
  stream_config.remine_every_rows = 1000;
  auto stream =
      session->OpenStream(rel.schema(), data->partition, stream_config);
  if (!stream.ok()) {
    std::cerr << "open failed: " << stream.status() << "\n";
    return 1;
  }

  //    All reads go through the QueryService facade. It binds to the live
  //    stream, so every published generation is served the instant it
  //    lands — the same hot-swap the TCP server relies on.
  QueryService service;
  service.AttachStream(**stream);

  // 3. Ingest in micro-batches, reporting each newly published generation
  //    and how the rule count moved.
  const size_t kBatch = 250;
  uint64_t seen_generation = 0;
  int64_t last_rules = 0;
  for (size_t begin = 0; begin < rel.num_rows(); begin += kBatch) {
    const size_t end = std::min(rel.num_rows(), begin + kBatch);
    Relation batch(rel.schema());
    for (size_t r = begin; r < end; ++r) {
      if (auto s = batch.AppendRow(rel.Row(r)); !s.ok()) {
        std::cerr << "append failed: " << s << "\n";
        return 1;
      }
    }
    if (auto s = (*stream)->Ingest(batch); !s.ok()) {
      std::cerr << "ingest failed: " << s << "\n";
      return 1;
    }
    SnapshotInfoResponse info;
    if (auto s = service.SnapshotInfo(info); !s.ok()) {
      std::cerr << "info failed: " << s << "\n";
      return 1;
    }
    if (info.generation > seen_generation) {
      seen_generation = info.generation;
      const int64_t rules = static_cast<int64_t>(info.num_rules);
      std::cout << "generation " << info.generation << " @ row "
                << info.rows_ingested << ": " << info.num_clusters
                << " clusters, " << rules << " rules ("
                << (rules >= last_rules ? "+" : "") << (rules - last_rules)
                << ")\n";
      last_rules = rules;
    }
  }

  // 4. Point-query through the service: which clusters contain tuple t,
  //    which rules fire for it? The response carries the answering
  //    snapshot's generation, so a caller can tell when a hot-swap
  //    happened between two queries.
  std::cout << "\nafter " << (*stream)->rows_ingested() << " rows, "
            << (*stream)->rows_since_snapshot()
            << " rows newer than the snapshot\n";
  PointQueryResponse hits;
  RuleListResponse page;
  for (size_t r : {size_t{0}, num_rows / 2, num_rows - 1}) {
    // The request views the tuple (no copy); keep the row alive past the
    // query call.
    const std::vector<double> row = rel.Row(r);
    PointQueryRequest query;
    query.tuple = row;
    if (auto s = service.PointQuery(query, hits); !s.ok()) {
      std::cerr << "query failed: " << s << "\n";
      return 1;
    }
    std::cout << "tuple " << r << " (generation " << hits.generation
              << "): " << hits.clusters.size() << " containing clusters, "
              << hits.total_rule_matches << " firing rules\n";
    // Rule ids ascend by degree (Phase II sorts strongest first); fetch
    // the pretty text of the top few through the paginated listing.
    const size_t shown = std::min<size_t>(3, hits.rules.size());
    for (size_t i = 0; i < shown; ++i) {
      RuleListRequest one;
      one.offset = hits.rules[i];
      one.limit = 1;
      one.include_text = true;
      if (auto s = service.ListRules(one, page);
          !s.ok() || page.rules.empty()) {
        std::cerr << "rule fetch failed: " << s << "\n";
        return 1;
      }
      std::cout << "    " << page.rules[0].text << "\n";
    }
    if (hits.rules.size() > shown) {
      std::cout << "    ... and " << hits.rules.size() - shown << " more\n";
    }
  }

  // 5. Checkpoint the stream: one CRC-guarded file holds the complete
  //    resumable state (config, schema, live ACF-trees, snapshot), written
  //    atomically. For hands-off durability set
  //    stream_config.checkpoint_every_rows / checkpoint_path instead and
  //    the miner checkpoints itself on the ingest cadence.
  const std::string ckpt = "streaming_mine.darckpt";
  if (auto s = session->SaveCheckpoint(**stream, ckpt); !s.ok()) {
    std::cerr << "checkpoint failed: " << s << "\n";
    return 1;
  }
  SnapshotInfoResponse live_info;
  if (auto s = service.SnapshotInfo(live_info); !s.ok()) {
    std::cerr << "info failed: " << s << "\n";
    return 1;
  }

  // 6. Recover, as a crashed process would: a fresh session restores the
  //    stream and re-mines from the summaries alone — no ingested tuple
  //    is re-read, and the rules come back bit-identical (Thm 6.1). Then
  //    hot-swap the service onto the restored stream: in-flight readers
  //    finish on the old binding, new queries see the warm-started one.
  auto restore_session =
      Session::Builder().WithConfig(config).WithThreads(0).Build();
  if (!restore_session.ok()) {
    std::cerr << "bad config: " << restore_session.status() << "\n";
    return 1;
  }
  auto restored = restore_session->RestoreCheckpoint(ckpt);
  if (!restored.ok()) {
    std::cerr << "restore failed: " << restored.status() << "\n";
    return 1;
  }
  if (auto remined = restored->stream->Remine(); !remined.ok()) {
    std::cerr << "re-mine failed: " << remined.status() << "\n";
    return 1;
  }
  service.AttachStream(*restored->stream);
  SnapshotInfoResponse restored_info;
  if (auto s = service.SnapshotInfo(restored_info); !s.ok()) {
    std::cerr << "info failed: " << s << "\n";
    return 1;
  }
  std::cout << "\nrestored from " << ckpt << ": "
            << restored_info.rows_ingested << " rows, re-mined to "
            << restored_info.num_rules << " rules ("
            << (restored_info.num_rules == live_info.num_rules
                    ? "identical to"
                    : "DIFFERS from")
            << " the live stream)\n";
  std::remove(ckpt.c_str());
  return 0;
}
