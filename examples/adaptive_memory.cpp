// Demonstrates the adaptive behaviour at the heart of the paper (§3): the
// same 30-attribute WBCD-like dataset is mined under shrinking memory
// budgets. With plenty of memory the ACF-trees keep fine-grained clusters;
// under pressure each tree raises its diameter threshold and rebuilds
// itself from summaries (never rescanning the data), trading cluster
// granularity for footprint.
//
// Run: ./build/examples/adaptive_memory [num_tuples] [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/observer.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1997;

  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/30,
                                      /*clusters_per_attr=*/35,
                                      /*outlier_fraction=*/0.2, seed);
  auto data = GeneratePlanted(spec, n, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  std::cout << "WBCD-like dataset: " << n << " tuples x 30 attributes, "
            << "35 planted clusters per attribute, 20% outliers\n\n";
  std::cout << std::setw(12) << "memory" << std::setw(12) << "clusters"
            << std::setw(12) << "frequent" << std::setw(10) << "rebuilds"
            << std::setw(14) << "max thresh" << std::setw(10) << "seconds"
            << "\n";

  for (size_t mb : {64, 16, 4, 1}) {
    DarConfig config;
    config.memory_budget_bytes = mb << 20;
    config.frequency_fraction = 0.01;
    // A CountersObserver sees every rebuild as it happens — the same
    // number Phase1Result reports per tree after the fact.
    auto counters = std::make_shared<CountersObserver>();
    auto session = Session::Builder()
                       .WithConfig(config)
                       .WithThreads(0)  // parts build concurrently
                       .AddObserver(counters)
                       .Build();
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    if (!phase1.ok()) {
      std::cerr << phase1.status() << "\n";
      return 1;
    }
    size_t raw = 0;
    double max_threshold = 0;
    for (size_t p = 0; p < phase1->raw_cluster_counts.size(); ++p) {
      raw += phase1->raw_cluster_counts[p];
      max_threshold =
          std::max(max_threshold, phase1->tree_stats[p].threshold);
    }
    std::cout << std::setw(10) << mb << "MB" << std::setw(12) << raw
              << std::setw(12) << phase1->clusters.size() << std::setw(10)
              << counters->counters().tree_rebuilds << std::setw(14)
              << std::fixed << std::setprecision(2) << max_threshold
              << std::setw(10) << phase1->seconds << "\n";
  }
  std::cout << "\nLess memory => more rebuilds, higher thresholds, coarser "
               "clusters - the\nquality/footprint dial of the adaptive "
               "algorithm.\n";
  return 0;
}
