// The §5.2 insurance scenario: hundreds of driver attributes are recorded,
// but an analyst only cares which characteristics determine a *target*
// attribute (annual claims). N:1 distance-based rules answer exactly that:
// "drivers aged 41-47 with 2-5 dependents have close to $10K-$14K of annual
// claims".
//
// Run: ./build/examples/insurance [num_tuples] [seed]

#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "datagen/fixtures.h"

int main(int argc, char** argv) {
  using namespace dar;

  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2026;

  auto data = GeneratePlanted(InsuranceSpec(), n, seed);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const Schema& schema = data->relation.schema();
  std::cout << "Generated " << n << " policy records over "
            << schema.ToString() << " (seed " << seed << ")\n\n";

  DarConfig config;
  config.frequency_fraction = 0.08;
  config.initial_diameters = {9.0, 1.2, 2200.0};  // Age, Dependents, Claims
  config.degree_threshold = 2500.0;
  config.count_rule_support = true;
  auto session = Session::Builder().WithConfig(config).Build();
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }

  auto result = session->Mine(data->relation, data->partition);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  const ClusterSet& clusters = result->phase1().clusters;
  std::cout << "Frequent clusters:\n";
  for (const auto& c : clusters.clusters()) {
    std::cout << "  [" << c.id << "] "
              << clusters.Describe(c.id, schema, data->partition) << "\n";
  }

  // The analyst's question: which antecedents determine Claims? Keep only
  // rules whose consequent is a single Claims cluster (part 2).
  std::cout << "\nN:1 rules targeting Claims (strongest first):\n";
  size_t shown = 0;
  for (const auto& rule : result->rules()) {
    if (rule.consequent.size() != 1) continue;
    if (clusters.cluster(rule.consequent[0]).part != 2) continue;
    std::cout << "  " << rule.ToString(clusters, schema, data->partition)
              << "\n";
    if (++shown >= 12) break;
  }
  if (shown == 0) {
    std::cout << "  (none found - try a higher degree threshold)\n";
  }
  return 0;
}
