// Reproduces the paper's Figure-1 contrast on the exact salary column from
// the paper, then on a larger skewed column: equi-depth partitioning (the
// Srikant-Agrawal quantitative-rule baseline) groups distant values such as
// [31K, 80K] together, while distance-based clustering respects gaps.
//
// Run: ./build/examples/salary_partitioning

#include <iostream>

#include "birch/acf_tree.h"
#include "common/random.h"
#include "datagen/fixtures.h"
#include "qar/equidepth.h"

namespace {

using namespace dar;

// Clusters a single column with an ACF-tree at the given diameter
// threshold and prints each cluster's bounding interval.
void PrintDistanceClusters(const std::vector<double>& column,
                           double threshold) {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "Salary"}};
  AcfTreeOptions opts;
  opts.initial_threshold = threshold;
  opts.memory_budget_bytes = 32u << 20;
  AcfTree tree(layout, 0, opts);
  for (double v : column) {
    Status s = tree.InsertPoint({{v}});
    if (!s.ok()) {
      std::cerr << s << "\n";
      return;
    }
  }
  for (const auto& c : tree.ExtractClusters()) {
    auto box = c.BoundingBox(0);
    std::cout << "    [" << box[0].first << ", " << box[0].second
              << "]  (n=" << c.n() << ", diameter=" << c.Diameter() << ")\n";
  }
}

void PrintEquiDepth(const std::vector<double>& column, size_t k) {
  auto intervals = EquiDepthPartition(column, k);
  if (!intervals.ok()) {
    std::cerr << intervals.status() << "\n";
    return;
  }
  for (const auto& iv : *intervals) {
    std::cout << "    " << iv.ToString() << "  (n=" << iv.count
              << ", span=" << iv.hi - iv.lo << ")\n";
  }
}

}  // namespace

int main() {
  using namespace dar;

  std::cout << "=== Figure 1: the paper's salary column ===\n";
  std::vector<double> salaries = Fig1SalaryColumn();
  std::cout << "  Equi-depth (depth 2):\n";
  PrintEquiDepth(salaries, 3);
  std::cout << "  Distance-based (diameter threshold 2K):\n";
  PrintDistanceClusters(salaries, 2000);

  std::cout << "\n=== A larger skewed salary population ===\n";
  Rng rng(11);
  std::vector<double> skewed;
  for (int i = 0; i < 600; ++i) skewed.push_back(rng.Gaussian(30000, 1500));
  for (int i = 0; i < 300; ++i) skewed.push_back(rng.Gaussian(82000, 1200));
  for (int i = 0; i < 100; ++i) skewed.push_back(rng.Gaussian(150000, 3000));
  std::cout << "  Equi-depth (4 intervals) splits the dense 30K mass and\n"
               "  merges across the 82K-150K gap:\n";
  PrintEquiDepth(skewed, 4);
  std::cout << "  Distance-based clusters follow the population structure:\n";
  PrintDistanceClusters(skewed, 6000);
  return 0;
}
