// dar_mine: a small command-line miner. Reads a CSV, derives thresholds
// with the advisor (unless overridden), mines distance-based association
// rules, and prints a text summary or a JSON report.
//
// Usage:
//   dar_mine <file.csv> [options]
//     --nominal=col1,col2     treat these columns as nominal
//     --frequency=0.05        cluster frequency threshold s0 (fraction)
//     --memory-mb=32          Phase-I memory budget
//     --max-antecedent=3      rule arity caps
//     --max-consequent=2
//     --support               post-scan support counting
//     --threads=4             worker threads (0 = hardware, default 1);
//                             the output is identical for every value
//     --json                  emit the JSON report instead of the summary
//
// Example:
//   ./build/examples/dar_mine policies.csv --nominal=region --json

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/advisor.h"
#include "core/report.h"
#include "core/session.h"
#include "relation/csv.h"

namespace {

struct CliOptions {
  std::string path;
  std::vector<std::string> nominal;
  double frequency = 0.05;
  size_t memory_mb = 32;
  size_t max_antecedent = 3;
  size_t max_consequent = 2;
  int threads = 1;
  bool support = false;
  bool json = false;
};

bool ParseArgs(int argc, char** argv, CliOptions& opts, std::string& error) {
  using dar::Split;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--nominal=", 0) == 0) {
      opts.nominal = Split(value_of("--nominal="), ',');
    } else if (arg.rfind("--frequency=", 0) == 0) {
      opts.frequency = std::strtod(value_of("--frequency=").c_str(), nullptr);
    } else if (arg.rfind("--memory-mb=", 0) == 0) {
      opts.memory_mb =
          std::strtoull(value_of("--memory-mb=").c_str(), nullptr, 10);
    } else if (arg.rfind("--max-antecedent=", 0) == 0) {
      opts.max_antecedent =
          std::strtoull(value_of("--max-antecedent=").c_str(), nullptr, 10);
    } else if (arg.rfind("--max-consequent=", 0) == 0) {
      opts.max_consequent =
          std::strtoull(value_of("--max-consequent=").c_str(), nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads =
          static_cast<int>(std::strtol(value_of("--threads=").c_str(),
                                       nullptr, 10));
    } else if (arg == "--support") {
      opts.support = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown option: " + arg;
      return false;
    } else if (opts.path.empty()) {
      opts.path = arg;
    } else {
      error = "unexpected argument: " + arg;
      return false;
    }
  }
  if (opts.path.empty()) {
    error = "usage: dar_mine <file.csv> [--nominal=a,b] [--frequency=0.05] "
            "[--memory-mb=32] [--threads=N] [--support] [--json]";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dar;

  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, cli, error)) {
    std::cerr << error << "\n";
    return 2;
  }

  CsvOptions csv;
  csv.nominal_columns = cli.nominal;
  auto table = ReadCsvFile(cli.path, csv);
  if (!table.ok()) {
    std::cerr << "reading " << cli.path << ": " << table.status() << "\n";
    return 1;
  }
  const Schema& schema = table->relation.schema();
  AttributePartition partition = AttributePartition::SingletonPartition(schema);
  std::cerr << "read " << table->relation.num_rows() << " rows over "
            << schema.ToString() << "\n";

  auto advice = SuggestThresholds(table->relation, partition);
  if (!advice.ok()) {
    std::cerr << "advisor: " << advice.status() << "\n";
    return 1;
  }
  std::cerr << advice->rationale;

  DarConfig config;
  config.memory_budget_bytes = cli.memory_mb << 20;
  config.frequency_fraction = cli.frequency;
  config.initial_diameters = advice->initial_diameters;
  config.density_thresholds = advice->density_thresholds;
  config.degree_thresholds = advice->degree_thresholds;
  config.max_antecedent = cli.max_antecedent;
  config.max_consequent = cli.max_consequent;
  config.count_rule_support = cli.support;
  config.refine_clusters = true;

  auto session = Session::Builder()
                     .WithConfig(config)
                     .WithThreads(cli.threads)
                     .Build();
  if (!session.ok()) {
    std::cerr << "config: " << session.status() << "\n";
    return 1;
  }
  auto result = session->Mine(table->relation, partition);
  if (!result.ok()) {
    std::cerr << "mining: " << result.status() << "\n";
    return 1;
  }
  if (cli.json) {
    std::cout << MiningResultToJson(result->result, schema, partition);
  } else {
    std::cout << MiningResultSummary(result->result, schema, partition, 40);
  }
  return 0;
}
